//! Criterion bench behind Table I: cost of one serialized-chain simulation
//! at each miner count (the confirmation-time experiment's inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cshard_core::simulate_ethereum;
use cshard_core::RuntimeConfig;
use cshard_workload::{FeeDistribution, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_confirmation");
    group.sample_size(30);
    let w = Workload::uniform_contracts(20, 0, FeeDistribution::Uniform { lo: 1, hi: 100 }, 1);
    let fees = w.fees();
    for miners in [2usize, 4, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(miners), &miners, |b, &m| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let cfg = RuntimeConfig {
                    seed,
                    ..RuntimeConfig::default()
                };
                black_box(
                    simulate_ethereum(fees.clone(), m, &cfg)
                        .expect("valid config")
                        .completion,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
