//! Criterion benches behind Fig. 3(a)–(g): the end-to-end system run
//! (formation + simulation) and the merging pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cshard_core::system::SystemConfig;
use cshard_core::{RuntimeConfig, ShardingSystem};
use cshard_games::{iterative_merge, MergingConfig};
use cshard_workload::{FeeDistribution, Workload};
use std::hint::black_box;

const FEES: FeeDistribution = FeeDistribution::Uniform { lo: 1, hi: 100 };

fn bench_system_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a_system_run");
    group.sample_size(30);
    for shards in [3usize, 9] {
        let w = Workload::uniform_contracts(200, shards - 1, FEES, 1);
        group.bench_with_input(BenchmarkId::from_parameter(shards), &w, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let sys = ShardingSystem::testbed(RuntimeConfig {
                    seed,
                    ..RuntimeConfig::default()
                });
                black_box(sys.run(w).expect("valid config").run.completion)
            });
        });
    }
    group.finish();
}

fn bench_merging_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3c_merging");
    group.sample_size(20);
    // The raw game (Algorithm 1+3) at the testbed scale…
    group.bench_function("iterative_merge_7_players", |b| {
        let sizes = [3u64, 7, 2, 8, 5, 4, 6];
        let probs = vec![0.5; 7];
        let cfg = MergingConfig {
            lower_bound: 10,
            ..MergingConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(iterative_merge(&sizes, &probs, &cfg, seed).new_shard_count())
        });
    });
    // …and the full merged system run.
    group.bench_function("system_run_with_merging", |b| {
        let w = Workload::with_small_shards(200, 9, 5, &[2, 4, 6, 3, 5], FEES, 1);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let sys = ShardingSystem::new(SystemConfig {
                runtime: RuntimeConfig {
                    seed,
                    ..RuntimeConfig::default()
                },
                merging: Some(MergingConfig {
                    lower_bound: 10,
                    ..MergingConfig::default()
                }),
                epoch: seed,
                ..SystemConfig::default()
            });
            black_box(sys.run(&w).expect("valid config").run.completion)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_system_run, bench_merging_pipeline);
criterion_main!(benches);
