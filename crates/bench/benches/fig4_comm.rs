//! Criterion bench behind Fig. 4(b)/(c): ChainSpace placement plus
//! communication accounting, and the unification broadcast cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cshard_baselines::ChainspacePlacement;
use cshard_crypto::sha256;
use cshard_games::{GameInputs, MergingConfig, UnifiedParameters};
use cshard_network::CommStats;
use cshard_primitives::{MinerId, ShardId};
use cshard_workload::{FeeDistribution, Workload};
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_chainspace_comm");
    for count in [1_000usize, 10_000] {
        let w = Workload::three_input(count, 3, FeeDistribution::Constant(5), 1);
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::from_parameter(count), &w, |b, w| {
            b.iter(|| {
                let stats = CommStats::new();
                let p = ChainspacePlacement::place(&w.transactions, 9, 7);
                p.record_validation_communication(&stats);
                black_box(stats.total())
            });
        });
    }
    group.finish();
}

fn bench_unification(c: &mut Criterion) {
    c.bench_function("fig4c_unification_replay", |b| {
        let params = UnifiedParameters::from_randomness(
            sha256(b"bench-epoch"),
            (0..9).map(MinerId::new).collect(),
            GameInputs::Merge {
                shard_sizes: (0..6u32).map(|i| (ShardId::new(i), 3 + i as u64)).collect(),
                config: MergingConfig {
                    lower_bound: 10,
                    ..MergingConfig::default()
                },
            },
        );
        b.iter(|| {
            let stats = CommStats::new();
            params.record_communication(&stats);
            black_box((
                params
                    .merge_outcome()
                    .expect("merge inputs")
                    .new_shard_count(),
                stats.total(),
            ))
        });
    });
}

criterion_group!(benches, bench_placement, bench_unification);
criterion_main!(benches);
