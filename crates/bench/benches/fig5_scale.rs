//! Criterion bench behind Fig. 5: both games at large-simulation scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cshard_games::selection::{best_reply_equilibrium, SelectionConfig};
use cshard_games::{iterative_merge, MergingConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_merge_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_merge_scale");
    group.sample_size(10);
    for players in [100usize, 400] {
        let mut rng = ChaCha8Rng::seed_from_u64(players as u64);
        let sizes: Vec<u64> = (0..players).map(|_| rng.gen_range(1..=9)).collect();
        let probs = vec![0.5; players];
        let cfg = MergingConfig {
            lower_bound: 22,
            ..MergingConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(players), &sizes, |b, sizes| {
            b.iter(|| black_box(iterative_merge(sizes, &probs, &cfg, 7).new_shard_count()));
        });
    }
    group.finish();
}

fn bench_select_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_select_scale");
    group.sample_size(10);
    for miners in [100usize, 400] {
        let t = miners * 10;
        let mut rng = ChaCha8Rng::seed_from_u64(miners as u64);
        let fees: Vec<u64> = (0..t).map(|_| rng.gen_range(1..=5000)).collect();
        let initial: Vec<Vec<usize>> = (0..miners)
            .map(|m| (0..10).map(|k| (m * 10 + k) % t).collect())
            .collect();
        let cfg = SelectionConfig {
            capacity: 10,
            max_rounds: 10_000,
        };
        group.bench_with_input(BenchmarkId::from_parameter(miners), &fees, |b, fees| {
            b.iter(|| black_box(best_reply_equilibrium(fees, &initial, &cfg).distinct_set_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge_scale, bench_select_scale);
criterion_main!(benches);
