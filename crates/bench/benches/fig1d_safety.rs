//! Criterion bench behind Fig. 1(d): the binomial shard-safety curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cshard_security::{shard_safety, shard_safety_curve, CorruptionThreshold};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1d_safety");
    // Single points at increasing shard sizes (cdf cost grows with n).
    for n in [30u64, 100, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::new("single", n), &n, |b, &n| {
            b.iter(|| black_box(shard_safety(n, 0.33, CorruptionThreshold::Majority)));
        });
    }
    // The whole Fig. 1(d) curve.
    group.bench_function("curve_5_to_100", |b| {
        b.iter(|| {
            black_box(shard_safety_curve(
                (5..=100).step_by(5).map(|n| n as u64),
                0.25,
                CorruptionThreshold::Majority,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
