//! The evaluation driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <id>... [--quick] [--threads <n>] [--json <dir>] [--svg <dir>]
//! experiments all [--quick] [--threads <n>] [--json <dir>] [--svg <dir>]
//! experiments list
//! ```
//!
//! Ids: table1, fig1d, fig3a..fig3h, fig4a..fig4c, fig5a, fig5b, sec4d.
//! `--quick` shrinks repeat counts (same sweeps, noisier averages);
//! `--threads <n>` caps the workers used for independent grid points
//! (default 0 = one per core; 1 = sequential — results are identical
//! either way, only wall-clock changes);
//! `--json <dir>` additionally writes one JSON file per experiment.

use cshard_bench::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut json_dir: Option<String> = None;
    let mut svg_dir: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => experiments::set_grid_threads(n),
                None => {
                    eprintln!("--threads needs a worker count (0 = one per core)");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(dir) => json_dir = Some(dir),
                None => {
                    eprintln!("--json needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--svg" => match it.next() {
                Some(dir) => svg_dir = Some(dir),
                None => {
                    eprintln!("--svg needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for id in experiments::ALL.iter().chain(experiments::ABLATIONS) {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(experiments::ABLATIONS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>...|all|ablations [--quick] [--threads <n>] [--json <dir>]"
        );
        eprintln!("ids: {}", experiments::ALL.join(", "));
        eprintln!("ablations: {}", experiments::ABLATIONS.join(", "));
        return ExitCode::FAILURE;
    }

    for dir in json_dir.iter().chain(svg_dir.iter()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    for id in &ids {
        let Some(result) = experiments::run(id, quick) else {
            eprintln!("unknown experiment id: {id}");
            return ExitCode::FAILURE;
        };
        println!("{}", result.to_table());
        if let Some(dir) = &json_dir {
            // The pipeline, scheduler, streaming-scale, settlement and
            // migration grids are bench artefacts, not paper figures —
            // they ship under BENCH_.
            let bench_grid = matches!(
                id.as_str(),
                "pipeline" | "sched" | "scale" | "settle" | "migrate"
            );
            let file = if bench_grid {
                format!("BENCH_{id}.json")
            } else {
                format!("{id}.json")
            };
            let path = format!("{dir}/{file}");
            if let Err(e) = std::fs::write(&path, result.to_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("  (json written to {path})");
        }
        if let Some(dir) = &svg_dir {
            let path = format!("{dir}/{id}.svg");
            let svg = cshard_bench::plot::render_svg(&result, cshard_bench::plot::options_for(id));
            if let Err(e) = std::fs::write(&path, svg) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("  (svg written to {path})");
        }
    }
    ExitCode::SUCCESS
}
