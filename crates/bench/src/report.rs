//! Experiment results: structured data plus table/JSON rendering.

use cshard_json as json;
use std::fmt::Write as _;

/// One named line of a figure (or one column of a table).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Mean of the y values (used for headline averages).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// A regenerated table or figure.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`table1`, `fig3a`, …).
    pub id: String,
    /// Human title, matching the paper artefact.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Headline findings and calibration notes (paper-vs-measured).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Renders the result as an aligned text table, one row per x value
    /// and one column per series.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);

        // Collect the union of x values, in order of first appearance.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.contains(&x) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(f64::total_cmp);

        // Header.
        let mut header: Vec<String> = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = vec![header];
        for &x in &xs {
            let mut row = vec![trim_float(x)];
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|&&(px, _)| px == x)
                    .map(|&(_, y)| trim_float(y))
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            rows.push(row);
        }

        // Column widths.
        let cols = rows[0].len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, &w)| format!("{cell:>w$}"))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
            if i == 0 {
                let underline: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
                let _ = writeln!(out, "  {}", underline.join("  "));
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }

    /// Renders as JSON (pretty).
    pub fn to_json(&self) -> String {
        json::ObjectBuilder::new()
            .field("id", self.id.as_str())
            .field("title", self.title.as_str())
            .field("x_label", self.x_label.as_str())
            .field("y_label", self.y_label.as_str())
            .field(
                "series",
                json::Value::Array(
                    self.series
                        .iter()
                        .map(|s| {
                            json::ObjectBuilder::new()
                                .field("name", s.name.as_str())
                                .field(
                                    "points",
                                    json::Value::Array(
                                        s.points
                                            .iter()
                                            .map(|&(x, y)| {
                                                json::Value::Array(vec![
                                                    json::Value::from(x),
                                                    json::Value::from(y),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                )
                                .build()
                        })
                        .collect(),
                ),
            )
            .field(
                "notes",
                json::Value::Array(self.notes.iter().map(|n| n.as_str().into()).collect()),
            )
            .build()
            .to_string_pretty()
    }
}

/// Formats a float compactly: integers without decimals, otherwise 4
/// significant decimals (plenty for the reproduced metrics); very small
/// probabilities switch to scientific notation.
fn trim_float(v: f64) -> String {
    if v != 0.0 && v.abs() < 1e-3 {
        return format!("{v:.2e}");
    }
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: "figX".into(),
            title: "sample".into(),
            x_label: "shards".into(),
            y_label: "improvement".into(),
            series: vec![
                Series::new("ours", vec![(1.0, 1.0), (2.0, 2.25)]),
                Series::new("paper", vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]),
            ],
            notes: vec!["a note".into()],
        }
    }

    #[test]
    fn table_contains_all_series_and_xs() {
        let t = sample().to_table();
        assert!(t.contains("ours"));
        assert!(t.contains("paper"));
        assert!(t.contains("2.2500"));
        assert!(t.contains("a note"));
        // x=3 exists only in the paper series; ours shows "-".
        let row3 = t.lines().find(|l| l.trim_start().starts_with('3')).unwrap();
        assert!(row3.contains('-'));
    }

    #[test]
    fn json_round_trips_structure() {
        let j = sample().to_json();
        let parsed = json::parse(&j).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_str(), Some("figX"));
        let first_series = &parsed.get("series").unwrap().as_array().unwrap()[0];
        let points = first_series.get("points").unwrap().as_array().unwrap();
        assert_eq!(points[1].as_array().unwrap()[1].as_f64(), Some(2.25));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(1.23456), "1.2346");
        assert_eq!(trim_float(8e-6), "8.00e-6");
        assert_eq!(trim_float(0.0), "0");
    }

    #[test]
    fn mean_y() {
        let s = Series::new("s", vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.mean_y(), 2.0);
        assert_eq!(Series::new("e", vec![]).mean_y(), 0.0);
    }
}
