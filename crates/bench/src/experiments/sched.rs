//! Scheduler lifecycle grid (`BENCH_sched.json`): the shard-lifecycle
//! work scheduler on a sparse workload, 10 → 2000 shards.
//!
//! Each grid point builds a shard set where only every tenth shard holds
//! transactions; the rest are born done. The lifecycle scheduler never
//! enqueues those idle shards in the active phase — they surface as the
//! `tasks skipped` counter — so the per-epoch launch cost scales with the
//! *busy* shard count, not the nominal one. Reported per point:
//!
//! * epochs/sec — full two-phase runs per host second (wall-clock is
//!   measured here, bench-side, per the ND001 split; the scheduler itself
//!   never reads a clock),
//! * tasks scheduled / tasks skipped per epoch, straight from
//!   [`cshard_core::RunSchedStats`].
//!
//! The skipped counter must be positive on the sparse grid — an idle
//! shard that still got scheduled would be a lifecycle regression.

use crate::experiments::grid_config;
use crate::report::{ExperimentResult, Series};
use cshard_core::{ContractShardDriver, Runtime, RuntimeConfig, ShardSpec};
use cshard_primitives::ShardId;
use std::time::Instant;

/// Every tenth shard is busy; the rest hold no transactions.
const BUSY_STRIDE: usize = 10;

struct Point {
    shards: usize,
    epochs_per_sec: f64,
    scheduled_per_epoch: f64,
    skipped_per_epoch: f64,
}

fn sparse_specs(shards: usize) -> Vec<ShardSpec> {
    (0..shards)
        .map(|i| {
            let fees = if i % BUSY_STRIDE == 0 {
                (1..=30u64).collect()
            } else {
                Vec::new()
            };
            ShardSpec::solo_greedy(ShardId::new(i as u32), fees)
        })
        .collect()
}

fn measure(shards: usize, repeats: u64) -> Point {
    let cfg = RuntimeConfig {
        seed: shards as u64,
        scheduler: grid_config(),
        ..RuntimeConfig::default()
    };
    let specs = sparse_specs(shards);
    let mut scheduled = 0u64;
    let mut skipped = 0u64;
    let started = Instant::now();
    for _ in 0..repeats {
        let drivers: Vec<ContractShardDriver> = specs
            .iter()
            .map(|s| ContractShardDriver::new(s, &cfg))
            .collect();
        let outcome = Runtime::builder()
            .scheduler(cfg.scheduler)
            .run(drivers)
            .expect("valid sparse grid");
        scheduled += outcome.sched.scheduled();
        skipped += outcome.sched.skipped();
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let e = repeats as f64;
    Point {
        shards,
        epochs_per_sec: e / wall,
        scheduled_per_epoch: scheduled as f64 / e,
        skipped_per_epoch: skipped as f64 / e,
    }
}

/// The `sched` experiment: launch throughput and scheduled/skipped task
/// counts vs. shard count on a 10%-busy workload.
pub fn run(quick: bool) -> ExperimentResult {
    let (counts, repeats): (Vec<usize>, u64) = if quick {
        (vec![10, 100, 2000], 2)
    } else {
        (vec![10, 50, 200, 500, 1000, 2000], 5)
    };
    let points: Vec<Point> = counts.iter().map(|&n| measure(n, repeats)).collect();
    let sparse = points.last().expect("non-empty grid");
    assert!(
        sparse.skipped_per_epoch > 0.0,
        "idle shards were scheduled on the sparse {}-shard point",
        sparse.shards
    );
    let x = |p: &Point| p.shards as f64;
    ExperimentResult {
        id: "sched".into(),
        title: "Shard-lifecycle scheduler on a sparse grid".into(),
        x_label: "shards".into(),
        y_label: "epochs/sec; tasks/epoch".into(),
        series: vec![
            Series::new(
                "epochs/sec",
                points.iter().map(|p| (x(p), p.epochs_per_sec)).collect(),
            ),
            Series::new(
                "tasks scheduled/epoch",
                points
                    .iter()
                    .map(|p| (x(p), p.scheduled_per_epoch))
                    .collect(),
            ),
            Series::new(
                "tasks skipped/epoch",
                points.iter().map(|p| (x(p), p.skipped_per_epoch)).collect(),
            ),
        ],
        notes: vec![
            format!(
                "1-in-{BUSY_STRIDE} shards busy (30 txs each), {repeats} epochs/point, \
                 scheduler workers from --threads"
            ),
            "skipped counts idle shards the lifecycle scheduler never enqueued; \
             scheduling cost tracks busy shards, not nominal shard count"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_grid_skips_idle_shards() {
        let r = run(true);
        let skipped = &r.series[2].points;
        // The 2000-shard point: ~90% of shards idle, every one of them
        // skipped in the active phase rather than scheduled.
        let last = *skipped.last().expect("points");
        assert_eq!(last.0, 2000.0);
        assert!(last.1 > 0.0, "no skips at 2000 shards: {last:?}");
        // Scheduled stays near the busy count (plus the idle-drain
        // re-admissions for empty-block accounting).
        let scheduled = r.series[1].points.last().expect("points").1;
        assert!(scheduled > 0.0);
    }

    #[test]
    fn sparse_runs_are_thread_count_independent() {
        let specs = sparse_specs(40);
        let run_at = |threads: usize| {
            let cfg = RuntimeConfig {
                seed: 7,
                scheduler: cshard_core::SchedulerConfig::new(threads).with_turn_events(8),
                ..RuntimeConfig::default()
            };
            let drivers: Vec<ContractShardDriver> = specs
                .iter()
                .map(|s| ContractShardDriver::new(s, &cfg))
                .collect();
            let outcome = Runtime::builder()
                .scheduler(cfg.scheduler)
                .run(drivers)
                .expect("valid sparse grid");
            (
                outcome.report.fingerprint(),
                outcome.sched.scheduled(),
                outcome.sched.skipped(),
            )
        };
        assert_eq!(run_at(1), run_at(4));
        assert_eq!(run_at(1), run_at(0));
    }
}
