//! The migration grid: cross-shard messages per transaction under static
//! placement vs. the cross-epoch placement engine.
//!
//! A zipf-hot [`TxStream`] with a diversification knob makes hot senders
//! multi-contract over time; static placement then routes *every* call of
//! such a sender through the MaxShard — one crosslink per call on the
//! unbatched per-transfer ledger. The placement engine watches exactly
//! this traffic, proposes dominance-based hot-account moves, and the
//! pipeline pins each mover to its home contract's shard, so only its
//! residual foreign calls stay cross-shard. Every move is *executed*, not
//! assumed: the proposing epoch's migrations become [`MigrationTicket`]s
//! for the next epoch's MaxShard run, each costing one honest `Crosslink`
//! (the state handoff) through `Event::Migration`'s drain → re-key →
//! book path.
//!
//! Headline acceptance (asserted below): by the final epoch the engine
//! cuts cumulative cross-shard messages per transaction by at least 2×
//! against static placement, and both arms are bit-identical across
//! scheduler thread counts.

use crate::experiments::grid_config;
use crate::report::{ExperimentResult, Series};
use cshard_core::Migration;
use cshard_core::{
    EpochInput, EpochPipeline, MigratingShardDriver, MigrationTicket, PipelineConfig,
    PlacementConfig, Runtime, RuntimeConfig, SettleConfig, SettlingShardDriver, ShardPlan,
    ShardSpec,
};
use cshard_crypto::sha256;
use cshard_network::CommKind;
use cshard_primitives::{Address, ShardId, SimTime};
use cshard_sim::SchedulerConfig;
use cshard_workload::{StreamConfig, TxStream};
use std::collections::BTreeMap;

/// Master seed of the grid (stream + every per-epoch run derive from it).
const SEED: u64 = 41;
/// Sender account space: small enough that hot-community senders repeat
/// (and diversify) within a handful of epochs.
const ACCOUNTS: u64 = 48;
/// Registered contracts; contract `c`'s shard is `ShardId::new(c)`.
const CONTRACTS: u32 = 6;
/// Zipf exponent — a hot head, echoing the paper's Sec. II-A statistics.
const ZIPF_S: f64 = 1.3;
/// Probability a contract call diversifies to a second contract. One
/// diversified call makes a sender multi-contract *forever* — under
/// static placement its whole future stream becomes MaxShard traffic.
const DIVERSIFY: f64 = 0.12;
/// Simulated apply time of each migration ticket within its epoch's run.
const APPLY_AT: SimTime = SimTime::from_secs(1);

/// One arm of the grid, run to completion.
struct Arm {
    /// `(epoch, cumulative crosslinks / cumulative txs)` per epoch.
    points: Vec<(f64, f64)>,
    /// Final cumulative crosslink count.
    crosslinks: u64,
    /// Final cumulative transaction count.
    txs: u64,
    /// Migration tickets executed through `Event::Migration`.
    applied: u64,
}

impl Arm {
    fn messages_per_tx(&self) -> f64 {
        self.crosslinks as f64 / self.txs.max(1) as f64
    }
}

/// The engine knobs of the placed arm. Dominance 55% admits diversified
/// senders (≈88% of a mover's calls hit its home contract); an activity
/// floor of 2 observed MaxShard calls pins hot movers within an epoch of
/// their first diversification.
fn engine_knobs() -> PlacementConfig {
    PlacementConfig {
        min_dominance_percent: 55,
        min_account_txs: 2,
        max_moves_per_epoch: ACCOUNTS as usize,
        ..PlacementConfig::engaged()
    }
}

fn stream() -> TxStream {
    TxStream::new(StreamConfig {
        accounts: ACCOUNTS,
        contracts: CONTRACTS,
        zipf_s: ZIPF_S,
        direct_fraction: 0.0,
        diversify: DIVERSIFY,
        seed: SEED,
        ..StreamConfig::default()
    })
}

/// Runs one arm: `epochs` pipeline epochs over the shared stream, each
/// followed by a MaxShard runtime run whose cross-shard transfers are the
/// epoch's MaxShard-routed contract calls (unbatched ledger: one
/// crosslink per transfer, so the count *is* the message count), with the
/// previous epoch's migrations executed as tickets inside the run.
fn run_arm(placed: bool, epochs: usize, per_epoch: usize, sched: SchedulerConfig) -> Arm {
    let placement = if placed {
        engine_knobs()
    } else {
        PlacementConfig::disabled()
    };
    let mut pipeline = EpochPipeline::new(PipelineConfig {
        placement,
        ..PipelineConfig::default()
    });
    let mut stream = stream();
    // Moves proposed but not yet executed (executed in the next epoch
    // that has a MaxShard run to execute them in).
    let mut pending: Vec<Migration> = Vec::new();
    let mut tags: BTreeMap<Address, u64> = BTreeMap::new();
    let (mut crosslinks, mut txs, mut applied) = (0u64, 0u64, 0u64);
    let mut points = Vec::with_capacity(epochs);

    for epoch in 0..epochs {
        let batch: Vec<_> = stream.by_ref().take(per_epoch).map(|(_, tx)| tx).collect();
        let fees: Vec<u64> = batch.iter().map(|tx| tx.fee.0).collect();
        let runtime = RuntimeConfig {
            seed: SEED ^ (epoch as u64).wrapping_mul(0x9E37_79B9),
            scheduler: sched,
            settle: SettleConfig::disabled(),
            ..RuntimeConfig::default()
        };
        let run = pipeline
            .run_epoch(EpochInput {
                transactions: &batch,
                fees: &fees,
                randomness: sha256((SEED ^ epoch as u64).to_be_bytes()),
                runtime: runtime.clone(),
            })
            .expect("valid migrate grid epoch");

        // The epoch's cross-shard ledger: every MaxShard-routed contract
        // call is one outbound transfer toward the contract's home shard.
        let mut shard_fees = Vec::new();
        let mut transfers: Vec<(usize, ShardId)> = Vec::new();
        let mut senders: Vec<Address> = Vec::new();
        for &i in &run.plan.maxshard {
            let slot = shard_fees.len();
            shard_fees.push(fees[i]);
            senders.push(batch[i].sender);
            if let Some(c) = batch[i].kind.contract() {
                transfers.push((slot, ShardPlan::shard_for_contract(c)));
            }
        }
        txs += batch.len() as u64;

        if !shard_fees.is_empty() {
            // Last epoch's moves execute inside this run: each ticket
            // owns the mover's residual transfer-table slots and costs
            // one crosslink when its `Event::Migration` applies.
            let tickets: Vec<MigrationTicket> = pending
                .drain(..)
                .map(|m| {
                    let next = tags.len() as u64;
                    let account = *tags.entry(m.account).or_insert(next);
                    MigrationTicket {
                        account,
                        from: m.from,
                        to: m.to,
                        at: APPLY_AT,
                        transfers: transfers
                            .iter()
                            .enumerate()
                            .filter(|&(_, &(slot, _))| senders[slot] == m.account)
                            .map(|(t, _)| t)
                            .collect(),
                    }
                })
                .collect();
            let spec = ShardSpec::solo_greedy(ShardId::MAX_SHARD, shard_fees);
            let inner = SettlingShardDriver::new(&spec, &runtime, transfers);
            let driver = MigratingShardDriver::new(inner, tickets);
            let outcome = Runtime::builder()
                .scheduler(sched)
                .run(vec![driver])
                .expect("valid MaxShard run");
            crosslinks += outcome.comm.for_kind(CommKind::Crosslink);
            applied += outcome.drivers[0].stats().applied;
        }
        pending.extend(run.migrations);
        points.push((epoch as f64 + 1.0, crosslinks as f64 / txs.max(1) as f64));
    }
    Arm {
        points,
        crosslinks,
        txs,
        applied,
    }
}

/// The `migrate` experiment: cumulative cross-shard messages per
/// transaction, epoch by epoch, static placement vs. the placement
/// engine.
pub fn run(quick: bool) -> ExperimentResult {
    let (epochs, per_epoch) = if quick { (7, 110) } else { (9, 160) };
    let sched = grid_config();
    let fixed = run_arm(false, epochs, per_epoch, sched);
    let placed = run_arm(true, epochs, per_epoch, sched);
    let reduction = fixed.messages_per_tx() / placed.messages_per_tx().max(f64::MIN_POSITIVE);
    // The grid's acceptance floor: the engine must at least halve
    // cross-shard messages per transaction by the final epoch, with
    // every executed move's handoff crosslink charged against it.
    assert!(
        reduction >= 2.0,
        "placement engine reduced messages/tx only {reduction:.2}x \
         ({} vs {} crosslinks over {} txs)",
        fixed.crosslinks,
        placed.crosslinks,
        fixed.txs,
    );
    assert!(
        placed.applied > 0,
        "no migration ticket executed — the grid is not exercising the \
         Event::Migration path"
    );
    let notes = vec![
        format!(
            "{epochs} epochs x {per_epoch} txs, {ACCOUNTS} accounts over {CONTRACTS} \
             zipf({ZIPF_S}) contracts, diversify {DIVERSIFY}; unbatched ledger \
             (1 crosslink per cross-shard transfer)"
        ),
        format!(
            "final messages/tx: static {:.3}, placed {:.3} — {reduction:.2}x reduction \
             (floor: 2x), with {} executed moves each booking one handoff crosslink",
            fixed.messages_per_tx(),
            placed.messages_per_tx(),
            placed.applied,
        ),
        "placed-arm residue: a pinned mover's foreign-contract calls stay \
         cross-shard, so the curve floors at the diversification rate"
            .into(),
    ];
    ExperimentResult {
        id: "migrate".into(),
        title: "Hot-account migration: cross-shard messages per transaction".into(),
        x_label: "epoch".into(),
        y_label: "cumulative crosslinks / tx".into(),
        series: vec![
            Series::new("static placement", fixed.points),
            Series::new("placement engine", placed.points),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_beats_static_by_2x_and_executes_moves() {
        let r = run(true);
        assert_eq!(r.series.len(), 2);
        let last = |s: &Series| s.points.last().map(|&(_, y)| y).unwrap_or(0.0);
        let (fixed, placed) = (last(&r.series[0]), last(&r.series[1]));
        assert!(
            fixed >= 2.0 * placed,
            "messages/tx: static {fixed} vs placed {placed}"
        );
    }

    #[test]
    fn migrate_grid_is_thread_count_invariant() {
        let base: Vec<Vec<(f64, f64)>> = [false, true]
            .iter()
            .map(|&p| run_arm(p, 4, 110, SchedulerConfig::new(1)).points)
            .collect();
        for threads in [4, 0] {
            let other: Vec<Vec<(f64, f64)>> = [false, true]
                .iter()
                .map(|&p| run_arm(p, 4, 110, SchedulerConfig::new(threads)).points)
                .collect();
            for (b, o) in base.iter().flatten().zip(other.iter().flatten()) {
                assert_eq!(
                    b.0.to_bits(),
                    o.0.to_bits(),
                    "x diverged at {threads} threads"
                );
                assert_eq!(
                    b.1.to_bits(),
                    o.1.to_bits(),
                    "y diverged at {threads} threads"
                );
            }
        }
    }
}
