//! Pipeline instrumentation grid (`BENCH_pipeline.json`): cold vs. warm
//! epoch pipelines on the Fig. 3(a)-style workloads.
//!
//! Each grid point drives `E` *identical* epochs through one persistent
//! [`EpochPipeline`] — once cold, once with warm starts — and reports
//!
//! * game-dynamics iterations per epoch for both (the warm curve must sit
//!   strictly below the cold one on repeated inputs),
//! * warm-start hits per epoch, and
//! * per-stage wall time (ns per epoch, cold run), measured here with a
//!   [`StageObserver`]: the pipeline itself never reads a clock (ND001);
//!   the bench harness is the sanctioned place for host-time measurement.
//!
//! The cold/warm runs are asserted bit-identical before anything is
//! reported — a warm start that changed a fingerprint is a bug, not a
//! data point.

use crate::experiments::{default_fees, grid_scheduler};
use crate::report::{ExperimentResult, Series};
use cshard_core::{
    EpochInput, EpochPipeline, MinerAllocation, PipelineConfig, RuntimeConfig, StageKind,
    StageObserver, StageOutput,
};
use cshard_crypto::sha256;
use cshard_games::MergingConfig;
use cshard_workload::Workload;
use std::time::Instant;

/// Wall-clock stage timer (bench-side half of the ND001 split).
#[derive(Default)]
struct StageTimer {
    started: Option<Instant>,
    ns: [u128; 6],
}

fn stage_index(stage: StageKind) -> usize {
    StageKind::ALL.iter().position(|&k| k == stage).unwrap_or(0)
}

impl StageObserver for StageTimer {
    fn stage_started(&mut self, _stage: StageKind) {
        self.started = Some(Instant::now());
    }
    fn stage_finished(&mut self, stage: StageKind, _output: &StageOutput) {
        if let Some(t) = self.started.take() {
            self.ns[stage_index(stage)] += t.elapsed().as_nanos();
        }
    }
}

struct Point {
    shards: usize,
    cold_iters_per_epoch: f64,
    warm_iters_per_epoch: f64,
    warm_hits_per_epoch: f64,
    stage_ns_per_epoch: [f64; 6],
}

fn measure(contracts: usize, epochs: u64) -> Point {
    let w = Workload::uniform_contracts(200, contracts, default_fees(), contracts as u64);
    let fees = w.fees();
    let seed = 100 + contracts as u64;
    let runtime = RuntimeConfig {
        seed,
        ..RuntimeConfig::default()
    };
    let config = |warm: bool| PipelineConfig {
        merging: Some(MergingConfig {
            lower_bound: 24,
            ..MergingConfig::default()
        }),
        selection: Some(500),
        allocation: MinerAllocation::PerShard(3),
        warm_start: warm,
        ..PipelineConfig::default()
    };
    let drive = |warm: bool| {
        let mut pipeline = EpochPipeline::new(config(warm));
        let mut timer = StageTimer::default();
        let mut runs = Vec::new();
        let mut shards = 0;
        for _ in 0..epochs {
            let out = pipeline
                .run_epoch_observed(
                    EpochInput {
                        transactions: &w.transactions,
                        fees: &fees,
                        randomness: sha256(seed.to_be_bytes()),
                        runtime: runtime.clone(),
                    },
                    &mut timer,
                )
                .expect("valid pipeline config");
            shards = out.shard_sizes.len();
            runs.push((out.run.fingerprint(), out.shard_sizes));
        }
        let m = pipeline.metrics();
        (
            runs,
            m.total_iterations(),
            m.total_warm_hits(),
            timer.ns,
            shards,
        )
    };
    let (cold_runs, cold_iters, _, cold_ns, shards) = drive(false);
    let (warm_runs, warm_iters, warm_hits, _, _) = drive(true);
    assert_eq!(
        cold_runs, warm_runs,
        "warm start changed results at {contracts} contracts"
    );
    let e = epochs as f64;
    Point {
        shards,
        cold_iters_per_epoch: cold_iters as f64 / e,
        warm_iters_per_epoch: warm_iters as f64 / e,
        warm_hits_per_epoch: warm_hits as f64 / e,
        stage_ns_per_epoch: cold_ns.map(|ns| ns as f64 / e),
    }
}

/// The `pipeline` experiment: cold vs. warm iteration counts and
/// per-stage timing over 2/5/9-shard workloads.
pub fn run(quick: bool) -> ExperimentResult {
    let epochs = if quick { 4 } else { 8 };
    let points: Vec<Point> =
        grid_scheduler().map(vec![1usize, 4, 8], move |_, c| measure(c, epochs));
    let x = |p: &Point| p.shards as f64;
    let mut series = vec![
        Series::new(
            "iterations/epoch (cold)",
            points
                .iter()
                .map(|p| (x(p), p.cold_iters_per_epoch))
                .collect(),
        ),
        Series::new(
            "iterations/epoch (warm)",
            points
                .iter()
                .map(|p| (x(p), p.warm_iters_per_epoch))
                .collect(),
        ),
        Series::new(
            "warm hits/epoch",
            points
                .iter()
                .map(|p| (x(p), p.warm_hits_per_epoch))
                .collect(),
        ),
    ];
    for (i, kind) in StageKind::ALL.iter().enumerate() {
        series.push(Series::new(
            format!("{} ns/epoch (cold)", kind.name()),
            points
                .iter()
                .map(|p| (x(p), p.stage_ns_per_epoch[i]))
                .collect(),
        ));
    }
    ExperimentResult {
        id: "pipeline".into(),
        title: "Epoch pipeline: cold vs. warm-start dynamics and stage timing".into(),
        x_label: "shards".into(),
        y_label: "iterations per epoch / ns per epoch".into(),
        series,
        notes: vec![
            format!(
                "{epochs} identical epochs per grid point through one persistent pipeline; \
                 merging lower_bound=24, selection cap 500, 3 miners/shard"
            ),
            "cold and warm runs are asserted bit-identical before reporting; warm starts \
             only shrink the iteration counters"
                .into(),
            "stage times are bench-side wall clock (StageObserver); the pipeline itself is \
             clock-free per ND001"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_curve_sits_strictly_below_cold() {
        let r = run(true);
        let cold = &r.series[0].points;
        let warm = &r.series[1].points;
        assert_eq!(cold.len(), 3);
        for (&(x, c), &(_, w)) in cold.iter().zip(warm) {
            assert!(w < c, "{x} shards: warm {w} !< cold {c}");
        }
        // Warm hits actually happened.
        assert!(r.series[2].points.iter().all(|&(_, h)| h > 0.0));
    }
}
