//! Ablations beyond the paper's own figures (DESIGN.md §8): each one
//! isolates a design choice and measures what it buys.

use crate::experiments::default_fees;
use crate::report::{ExperimentResult, Series};
use cshard_core::simulate_ethereum;
use cshard_core::system::{MinerAllocation, SystemConfig};
use cshard_core::throughput_improvement;
use cshard_core::{PropagationModel, RuntimeConfig, ShardingSystem};
use cshard_games::merging::optimal_new_shard_count;
use cshard_games::selection::{best_reply_equilibrium, SelectionConfig};
use cshard_games::{iterative_merge, one_shot_merge, MergingConfig};
use cshard_network::{GossipNet, LatencyModel};
use cshard_primitives::SimTime;
use cshard_security::{shard_safety, CorruptionThreshold};
use cshard_workload::{FeeDistribution, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Ablation: replicator step size η vs. convergence slots and merge
/// quality. Sec. V-B's O(M log 1/E) bound hides the η-dependence; too
/// small is slow, too large oscillates inside the clamp.
pub fn run_eta(quick: bool) -> ExperimentResult {
    let etas = [0.03f64, 0.06, 0.12, 0.24, 0.48];
    let repeats = if quick { 5 } else { 20 };
    let mut slots_pts = Vec::new();
    let mut satisfied_pts = Vec::new();
    for &eta in &etas {
        let mut slots = 0usize;
        let mut satisfied = 0usize;
        for seed in 0..repeats {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let sizes: Vec<u64> = (0..8).map(|_| rng.gen_range(1..=9)).collect();
            let cfg = MergingConfig {
                eta,
                lower_bound: 12,
                ..MergingConfig::default()
            };
            let out = one_shot_merge(&sizes, &[0.5; 8], &cfg, seed);
            slots += out.slots;
            satisfied += usize::from(out.satisfied);
        }
        slots_pts.push((eta, slots as f64 / repeats as f64));
        satisfied_pts.push((eta, satisfied as f64 / repeats as f64));
    }
    ExperimentResult {
        id: "abl-eta".into(),
        title: "Ablation: merging-game step size".into(),
        x_label: "eta".into(),
        y_label: "slots to converge / success rate".into(),
        series: vec![
            Series::new("slots to converge", slots_pts),
            Series::new("satisfaction rate", satisfied_pts),
        ],
        notes: vec![
            format!("8 small shards (1-9 txs), L = 12, {repeats} seeds/point"),
            "small eta converges slowly; large eta still converges (the clamp bounds \
             oscillation) — the default 0.12 sits on the flat part of the success curve"
                .into(),
        ],
    }
}

/// Ablation: the runtime's conflict window vs. the Fig. 3(a)-style
/// improvement, plus the gossip-derived window of a real flooding network
/// for context.
pub fn run_window(quick: bool) -> ExperimentResult {
    let windows = [0u64, 15, 30, 60, 120];
    let repeats = if quick { 4 } else { 15 };
    let mut pts = Vec::new();
    for &w in &windows {
        let mut imp = 0.0;
        for seed in 0..repeats {
            let wl = Workload::uniform_contracts(200, 8, default_fees(), seed);
            let cfg = RuntimeConfig {
                seed,
                propagation: PropagationModel::Window(SimTime::from_secs(w)),
                ..RuntimeConfig::default()
            };
            let sharded = ShardingSystem::testbed(cfg.clone())
                .run(&wl)
                .expect("valid config");
            let eth = simulate_ethereum(wl.fees(), 9, &cfg).expect("valid config");
            imp += throughput_improvement(&eth, &sharded.run);
        }
        pts.push((w as f64, imp / repeats as f64));
    }
    // What a real gossip network would justify as the window.
    let gossip = GossipNet::random(100, 3, LatencyModel::wide_area(), 7);
    let coverage = gossip.full_coverage_time(0, 1);
    ExperimentResult {
        id: "abl-window".into(),
        title: "Ablation: conflict window vs. sharding advantage".into(),
        x_label: "conflict window (s)".into(),
        y_label: "improvement vs 9-miner Ethereum".into(),
        series: vec![Series::new("improvement", pts)],
        notes: vec![
            format!("9 shards vs 9-miner single chain, {repeats} seeds/point"),
            "with no window the single chain pools hash power and sharding's edge shrinks; \
             the advantage is the serialization the paper describes, not raw parallel hash \
             power"
                .into(),
            format!(
                "pure propagation over a 100-node wide-area gossip graph covers everyone in \
                 {coverage}; the 60 s default additionally models template-refresh lag"
            ),
        ],
    }
}

/// Ablation: selection-game distinct sets under different fee models —
/// reproduces the Fig. 5(b) degeneracy story at testbed scale.
pub fn run_fees(quick: bool) -> ExperimentResult {
    let miners = 9usize;
    let capacity = 10usize;
    let t = 200usize;
    let repeats = if quick { 5 } else { 20 };
    let models: [(&str, FeeDistribution); 4] = [
        ("constant", FeeDistribution::Constant(10)),
        ("uniform", FeeDistribution::Uniform { lo: 1, hi: 100 }),
        ("binomial", FeeDistribution::Binomial { n: 200 }),
        (
            "zipf",
            FeeDistribution::Zipf {
                max: 10_000,
                s: 1.4,
            },
        ),
    ];
    let mut series = Vec::new();
    for (name, model) in models {
        let mut pts = Vec::new();
        for seed in 0..repeats {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let fees: Vec<u64> = (0..t).map(|_| model.sample(&mut rng)).collect();
            let initial: Vec<Vec<usize>> = (0..miners)
                .map(|m| (0..capacity).map(|k| (m * capacity + k) % t).collect())
                .collect();
            let out = best_reply_equilibrium(
                &fees,
                &initial,
                &SelectionConfig {
                    capacity,
                    max_rounds: 10_000,
                },
            );
            pts.push((seed as f64, out.distinct_set_count() as f64));
        }
        let mean = pts.iter().map(|&(_, y)| y).sum::<f64>() / pts.len() as f64;
        series.push(Series::new(format!("{name} (mean {mean:.1})"), pts));
    }
    ExperimentResult {
        id: "abl-fees".into(),
        title: "Ablation: fee distribution vs. distinct equilibrium sets".into(),
        x_label: "seed".into(),
        y_label: "distinct sets (of 9 miners)".into(),
        series,
        notes: vec![
            format!("200 txs, 9 miners, capacity {capacity}, {repeats} seeds"),
            "spread fee mass (uniform/binomial) keeps all nine sets distinct; heavy \
             concentration (zipf) occasionally collapses them — the Fig. 5(b) mechanism"
                .into(),
        ],
    }
}

/// Ablation: the candidate-pool multiplier of Algorithm 1's per-round game
/// (our scale-free-band implementation choice) vs. merge quality.
pub fn run_pool(quick: bool) -> ExperimentResult {
    // The multiplier is baked into iterative_merge (2.5·L of expected
    // mass); emulate other pool sizes by slicing the player set before the
    // call, which is exactly what the multiplier controls.
    let n = if quick { 120 } else { 400 };
    let lower_bound = 22u64;
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=9)).collect();
    let optimal = optimal_new_shard_count(&sizes, lower_bound) as f64;
    let cfg = MergingConfig {
        lower_bound,
        ..MergingConfig::default()
    };
    // Whole-population game (multiplier = ∞) vs. the bounded-pool default:
    // run one_shot repeatedly on the full remaining set, mimicking the
    // naive Algorithm 1.
    let naive = {
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut shards = 0usize;
        let mut round = 0u64;
        let mut dry = 0;
        while remaining.iter().map(|&i| sizes[i]).sum::<u64>() >= lower_bound && dry < 5 {
            let round_sizes: Vec<u64> = remaining.iter().map(|&i| sizes[i]).collect();
            let out = one_shot_merge(&round_sizes, &vec![0.5; round_sizes.len()], &cfg, round);
            round += 1;
            if out.satisfied {
                let members: Vec<usize> = out.merged.iter().map(|&j| remaining[j]).collect();
                let set: std::collections::HashSet<usize> = members.into_iter().collect();
                remaining.retain(|i| !set.contains(i));
                shards += 1;
                dry = 0;
            } else {
                dry += 1;
            }
        }
        shards as f64
    };
    let bounded = iterative_merge(&sizes, &vec![0.5; n], &cfg, 77).new_shard_count() as f64;

    ExperimentResult {
        id: "abl-pool".into(),
        title: "Ablation: bounded candidate pool in Algorithm 1".into(),
        x_label: "variant".into(),
        y_label: "new shards (higher is better)".into(),
        series: vec![
            Series::new("optimal", vec![(0.0, optimal)]),
            Series::new("bounded pool (ours)", vec![(0.0, bounded)]),
            Series::new("whole-population game", vec![(0.0, naive)]),
        ],
        notes: vec![
            format!("{n} small shards, sizes ~U(1,9), L = {lower_bound}"),
            "playing each round among all remaining players drowns any single player's \
             marginal influence and the dynamics absorb at 'stay'; the bounded pool keeps \
             the replicator band scale-free (DESIGN.md §8)"
                .into(),
        ],
    }
}

/// Ablation: one-miner-per-shard vs. size-proportional miner allocation on
/// a skewed workload. Sec. III-B argues miners must track transaction
/// fractions ("MaxShard may contain more transactions than other shards,
/// thus more miners are required"); with the selection game giving
/// multi-miner shards parallel confirmation, proportional staffing should
/// beat flat staffing when load is skewed.
pub fn run_alloc(quick: bool) -> ExperimentResult {
    let repeats = if quick { 4 } else { 15 };
    let mut flat_pts = Vec::new();
    let mut prop_pts = Vec::new();
    for (x, zipf_s) in [(1usize, 0.2f64), (2, 0.6), (3, 1.0), (4, 1.4)] {
        let mut flat = 0.0;
        let mut proportional = 0.0;
        for seed in 0..repeats {
            let wl = Workload::heavy_tail(300, 9, zipf_s, default_fees(), seed);
            let rt = RuntimeConfig {
                seed,
                ..RuntimeConfig::default()
            };
            let eth = simulate_ethereum(wl.fees(), 1, &rt).expect("valid config");
            let total_miners = 18;
            let shard_count = {
                use cshard_core::ShardPlan;
                use cshard_ledger::CallGraph;
                ShardPlan::build(&wl.transactions, &CallGraph::new()).active_shard_count()
            };
            let flat_run = ShardingSystem::new(SystemConfig {
                runtime: rt.clone(),
                selection: Some(1000),
                allocation: MinerAllocation::PerShard((total_miners / shard_count).max(1)),
                ..SystemConfig::default()
            })
            .run(&wl)
            .expect("valid config");
            let prop_run = ShardingSystem::new(SystemConfig {
                runtime: rt.clone(),
                selection: Some(1000),
                allocation: MinerAllocation::Proportional {
                    total: total_miners.max(shard_count),
                },
                ..SystemConfig::default()
            })
            .run(&wl)
            .expect("valid config");
            flat += throughput_improvement(&eth, &flat_run.run);
            proportional += throughput_improvement(&eth, &prop_run.run);
        }
        flat_pts.push((x as f64, flat / repeats as f64));
        prop_pts.push((x as f64, proportional / repeats as f64));
    }
    let gain = prop_pts.iter().map(|&(_, y)| y).sum::<f64>()
        / flat_pts.iter().map(|&(_, y)| y).sum::<f64>()
        - 1.0;
    ExperimentResult {
        id: "abl-alloc".into(),
        title: "Ablation: flat vs size-proportional miner allocation".into(),
        x_label: "workload skew (1=mild Zipf(0.2) .. 4=heavy Zipf(1.4))".into(),
        y_label: "throughput improvement".into(),
        series: vec![
            Series::new("flat (equal per shard)", flat_pts),
            Series::new("proportional to size", prop_pts),
        ],
        notes: vec![
            format!("300 txs over 9 contracts, 18 miners total, {repeats} seeds/point"),
            format!(
                "proportional staffing yields {:+.0}% over flat staffing across the sweep — the Sec. III-B rationale, quantified",
                gain * 100.0
            ),
        ],
    }
}

/// Ablation: PoW-majority vs. BFT-third corruption thresholds for the
/// Fig. 1(d) safety question.
pub fn run_threshold(_quick: bool) -> ExperimentResult {
    let sizes: Vec<u64> = (5..=100).step_by(5).map(|n| n as u64).collect();
    let curve = |thr: CorruptionThreshold| -> Vec<(f64, f64)> {
        sizes
            .iter()
            .map(|&n| (n as f64, shard_safety(n, 0.25, thr)))
            .collect()
    };
    ExperimentResult {
        id: "abl-threshold".into(),
        title: "Ablation: corruption threshold (PoW majority vs BFT third)".into(),
        x_label: "miners in shard".into(),
        y_label: "safety at 25% adversary".into(),
        series: vec![
            Series::new("majority (>1/2)", curve(CorruptionThreshold::Majority)),
            Series::new("one-third (>1/3)", curve(CorruptionThreshold::OneThird)),
        ],
        notes: vec![
            "a BFT-sharded design (Omniledger-style) needs noticeably larger shards for \
             the same safety at the same adversary — the price of the 1/3 threshold"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_default_is_on_the_plateau() {
        let r = run_eta(true);
        let success = &r.series[1].points;
        let at_default = success.iter().find(|p| p.0 == 0.12).unwrap().1;
        assert!(at_default >= 0.8, "default eta success {at_default}");
    }

    #[test]
    fn window_matters() {
        let r = run_window(true);
        let pts = &r.series[0].points;
        let no_window = pts[0].1;
        let default = pts.iter().find(|p| p.0 == 60.0).unwrap().1;
        assert!(
            default > no_window,
            "serialization window must be what gives sharding its edge: {default:.2} vs {no_window:.2}"
        );
    }

    #[test]
    fn fee_spread_controls_distinctness() {
        let r = run_fees(true);
        let mean = |name: &str| {
            r.series
                .iter()
                .find(|s| s.name.starts_with(name))
                .unwrap()
                .mean_y()
        };
        assert!(
            mean("uniform") >= mean("zipf"),
            "{} vs {}",
            mean("uniform"),
            mean("zipf")
        );
        assert!(mean("constant") >= 8.0, "equal fees must spread fully");
    }

    #[test]
    fn bounded_pool_beats_whole_population() {
        let r = run_pool(true);
        let get = |name: &str| {
            r.series
                .iter()
                .find(|s| s.name.starts_with(name))
                .unwrap()
                .points[0]
                .1
        };
        assert!(get("bounded") > get("whole-population"));
        assert!(get("bounded") <= get("optimal") + 1e-9);
    }

    #[test]
    fn alloc_ablation_runs_and_compares() {
        let r = run_alloc(true);
        assert_eq!(r.series.len(), 2);
        for s in &r.series {
            assert_eq!(s.points.len(), 4);
            assert!(s.points.iter().all(|&(_, y)| y > 0.5));
        }
    }

    #[test]
    fn majority_threshold_dominates() {
        let r = run_threshold(true);
        for (m, t) in r.series[0].points.iter().zip(&r.series[1].points) {
            assert!(m.1 >= t.1);
        }
    }
}
