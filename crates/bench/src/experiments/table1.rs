//! Table I: confirmation time with different numbers of miners.
//!
//! 20 transactions injected into a non-sharded chain; all miners select the
//! identical highest-fee set, so adding miners stops helping once the
//! conflict window dominates. The paper's measured row is included for
//! side-by-side comparison.

use crate::experiments::default_fees;
use crate::report::{ExperimentResult, Series};
use cshard_core::simulate_ethereum;
use cshard_core::RuntimeConfig;
use cshard_workload::Workload;

/// The paper's measured confirmation times (seconds) for 2–7 miners.
pub const PAPER_ROW: [(f64, f64); 6] = [
    (2.0, 218.0),
    (3.0, 194.0),
    (4.0, 113.0),
    (5.0, 120.0),
    (6.0, 103.0),
    (7.0, 121.0),
];

/// Runs the Table I reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let repeats = if quick { 10 } else { 100 };
    let mut ours = Vec::new();
    for miners in 2..=7usize {
        let mut total = 0.0;
        for seed in 0..repeats {
            let w = Workload::uniform_contracts(20, 0, default_fees(), seed);
            let cfg = RuntimeConfig {
                seed,
                ..RuntimeConfig::default()
            };
            total += simulate_ethereum(w.fees(), miners, &cfg)
                .expect("valid config")
                .completion
                .as_secs_f64();
        }
        ours.push((miners as f64, total / repeats as f64));
    }
    let plateau_start = ours.iter().find(|&&(m, _)| m == 4.0).map(|&(_, t)| t);
    let plateau_end = ours.last().map(|&(_, t)| t);
    let mut notes = vec![
        "20 txs, identical greedy selection, 1 block/min per miner, 60 s conflict window"
            .to_string(),
        format!("averaged over {repeats} seeds per point"),
    ];
    if let (Some(a), Some(b)) = (plateau_start, plateau_end) {
        notes.push(format!(
            "plateau: {a:.0}s at 4 miners vs {b:.0}s at 7 — adding miners stops helping \
             (paper: 113s vs 121s)"
        ));
    }
    ExperimentResult {
        id: "table1".into(),
        title: "Confirmation time vs. number of miners (non-sharded)".into(),
        x_label: "miners".into(),
        y_label: "confirmation time (s)".into(),
        series: vec![
            Series::new("measured (s)", ours),
            Series::new("paper (s)", PAPER_ROW.to_vec()),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_plateau() {
        let r = run(true);
        let measured = &r.series[0];
        let t2 = measured.points[0].1;
        let t7 = measured.points.last().unwrap().1;
        assert!(t2 > t7, "no initial speedup: t2={t2:.0} t7={t7:.0}");
        // Beyond 4 miners the curve is flat within 25 %.
        let t4 = measured.points.iter().find(|p| p.0 == 4.0).unwrap().1;
        assert!((t4 - t7).abs() / t4 < 0.25, "t4={t4:.0} t7={t7:.0}");
    }
}
