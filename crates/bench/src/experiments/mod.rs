//! One module per paper artefact. See DESIGN.md §3 for the full index.

pub mod ablations;
pub mod faults;
pub mod fig1d;
pub mod fig3ab;
pub mod fig3cg;
pub mod fig3h;
pub mod fig4;
pub mod fig5;
pub mod migrate;
pub mod pipeline;
pub mod scale;
pub mod sched;
pub mod sec4d;
pub mod settle;
pub mod table1;

use crate::report::ExperimentResult;
use cshard_sim::{SchedulerConfig, WorkScheduler};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads for parallelizing independent experiment grid points
/// (0 = one per core). Grid points are seeded independently, so the
/// results are bit-identical at any setting — only wall-clock changes.
static GRID_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the grid-point worker count (the driver's `--threads` flag).
/// `1` forces the original sequential sweeps; `0` uses every core.
pub fn set_grid_threads(threads: usize) {
    GRID_THREADS.store(threads, Ordering::Relaxed);
}

/// The shared scheduler configuration every experiment reads — the one
/// place the driver's `--threads` flag lands, whether an experiment fans
/// grid points out ([`grid_scheduler`]) or threads the config into a
/// protocol run's `Runtime::builder()`.
pub fn grid_config() -> SchedulerConfig {
    SchedulerConfig::new(GRID_THREADS.load(Ordering::Relaxed))
}

/// The scheduler experiments fan their independent grid points out on,
/// consuming [`grid_config`].
pub fn grid_scheduler() -> WorkScheduler {
    WorkScheduler::new(grid_config())
}

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1", "fig1d", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g", "fig3h",
    "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "sec4d", "faults", "pipeline", "sched", "scale",
    "settle", "migrate",
];

/// The ablation studies of DESIGN.md §8 (run with `experiments ablations`
/// or by id).
pub const ABLATIONS: &[&str] = &[
    "abl-eta",
    "abl-window",
    "abl-fees",
    "abl-pool",
    "abl-alloc",
    "abl-threshold",
];

/// Runs one experiment by id. `quick` shrinks repeat counts and sweep sizes
/// (used by CI-ish runs); the default reproduces the paper-scale settings.
pub fn run(id: &str, quick: bool) -> Option<ExperimentResult> {
    Some(match id {
        "table1" => table1::run(quick),
        "fig1d" => fig1d::run(),
        "fig3a" => fig3ab::run_a(quick),
        "fig3b" => fig3ab::run_b(quick),
        "fig3c" => fig3cg::run(quick).c,
        "fig3d" => fig3cg::run(quick).d,
        "fig3e" => fig3cg::run(quick).e,
        "fig3f" => fig3cg::run(quick).f,
        "fig3g" => fig3cg::run(quick).g,
        "fig3h" => fig3h::run(quick),
        "fig4a" => fig4::run_a(quick),
        "fig4b" => fig4::run_b(quick),
        "fig4c" => fig4::run_c(quick),
        "fig5a" => fig5::run_a(quick),
        "fig5b" => fig5::run_b(quick),
        "sec4d" => sec4d::run(),
        "faults" => faults::run(quick),
        "pipeline" => pipeline::run(quick),
        "sched" => sched::run(quick),
        "scale" => scale::run(quick),
        "settle" => settle::run(quick),
        "migrate" => migrate::run(quick),
        "abl-eta" => ablations::run_eta(quick),
        "abl-window" => ablations::run_window(quick),
        "abl-fees" => ablations::run_fees(quick),
        "abl-pool" => ablations::run_pool(quick),
        "abl-alloc" => ablations::run_alloc(quick),
        "abl-threshold" => ablations::run_threshold(quick),
        _ => return None,
    })
}

/// The fee model shared by the throughput experiments (uniform, as the
/// paper's injections do not stress fee structure; the security analysis
/// uses its own binomial model).
pub fn default_fees() -> cshard_workload::FeeDistribution {
    cshard_workload::FeeDistribution::Uniform { lo: 1, hi: 100 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs_quick() {
        // fig3c..g share one computation; run() must succeed for each id.
        for id in ALL {
            let r = run(id, true).unwrap_or_else(|| panic!("unknown id {id}"));
            assert_eq!(&r.id, id);
            assert!(!r.series.is_empty(), "{id} has no series");
            assert!(
                r.series.iter().any(|s| !s.points.is_empty()),
                "{id} has no data"
            );
        }
    }

    #[test]
    fn every_ablation_runs_quick() {
        for id in ABLATIONS {
            let r = run(id, true).unwrap_or_else(|| panic!("unknown id {id}"));
            assert_eq!(&r.id, id);
            assert!(!r.series.is_empty(), "{id} has no series");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig9z", true).is_none());
    }
}
