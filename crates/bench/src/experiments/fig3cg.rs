//! Fig. 3(c)–(g): the inter-shard merging experiments.
//!
//! Sec. VI-C: nine shards, 2–7 of them small (1–9 transactions each, drawn
//! per seed), 200 transactions total, one miner per shard at one block per
//! minute. Five views of the same sweep:
//!
//! * (c) empty blocks per shard, before vs. after our merging;
//! * (d) throughput improvement, before vs. after our merging;
//! * (e) throughput improvement, ours vs. randomized (p = ½) merging;
//! * (f) empty blocks per shard, ours vs. randomized merging;
//! * (g) new shards formed, ours vs. randomized merging.
//!
//! The merge lower bound `L` is one block's worth of transactions: a merged
//! shard that can fill a block keeps earning fees instead of packing
//! empties, which is exactly the Eq. (1) incentive condition. (The paper's
//! small shards sum to well under its Sec. VI-B1 bound of 22, so its own
//! merging experiments necessarily run with a smaller `L` too.)

use crate::experiments::default_fees;
use crate::report::{ExperimentResult, Series};
use cshard_baselines::random_merge;
use cshard_core::formation::ShardPlan;
use cshard_core::simulate_ethereum;
use cshard_core::system::{SystemConfig, SystemReport};
use cshard_core::{simulate, RuntimeConfig, ShardSpec, ShardingSystem};
use cshard_core::{throughput_improvement, RunReport};
use cshard_games::MergingConfig;
use cshard_ledger::CallGraph;
use cshard_primitives::{ShardId, SimTime};
use cshard_workload::Workload;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One block's worth — the merge bound for these experiments.
const LOWER_BOUND: u64 = 10;

/// The five rendered figures.
pub struct MergeFigures {
    /// Fig. 3(c).
    pub c: ExperimentResult,
    /// Fig. 3(d).
    pub d: ExperimentResult,
    /// Fig. 3(e).
    pub e: ExperimentResult,
    /// Fig. 3(f).
    pub f: ExperimentResult,
    /// Fig. 3(g).
    pub g: ExperimentResult,
}

#[derive(Default, Clone, Copy)]
struct Avg {
    imp_before: f64,
    imp_ours: f64,
    imp_random: f64,
    empty_before: f64,
    empty_ours: f64,
    empty_random: f64,
    shards_ours: f64,
    shards_random: f64,
}

fn small_sizes(count: usize, seed: u64) -> Vec<u64> {
    // "We only inject 1 to 9 transactions into a small shard."
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD00D);
    (0..count).map(|_| rng.gen_range(1..=9u64)).collect()
}

/// Runs the randomized-merging (p = ½) variant: same formation, coin-flip
/// coalitions instead of the game.
fn run_randomized(w: &Workload, cfg: &RuntimeConfig, seed: u64) -> (RunReport, usize) {
    let plan = ShardPlan::build(&w.transactions, &CallGraph::new());
    let fees = w.fees();
    let mut groups: Vec<(ShardId, Vec<u64>)> = plan
        .contract_shards
        .iter()
        .map(|(&shard, idxs)| (shard, idxs.iter().map(|&i| fees[i]).collect()))
        .collect();
    if !plan.maxshard.is_empty() {
        groups.push((
            ShardId::MAX_SHARD,
            plan.maxshard.iter().map(|&i| fees[i]).collect(),
        ));
    }
    let small: Vec<usize> = (0..groups.len())
        .filter(|&i| !groups[i].0.is_max_shard() && (groups[i].1.len() as u64) < LOWER_BOUND)
        .collect();
    let sizes: Vec<u64> = small.iter().map(|&i| groups[i].1.len() as u64).collect();
    let outcome = random_merge(&sizes, LOWER_BOUND, seed);

    // Fuse merged groups (same rule as the system: keep the lowest id).
    let mut consumed = Vec::new();
    let mut fused: Vec<(ShardId, Vec<u64>)> = Vec::new();
    for players in &outcome.new_shards {
        let members: Vec<usize> = players.iter().map(|&p| small[p]).collect();
        let id = members.iter().map(|&g| groups[g].0).min().expect("members");
        let mut queue = Vec::new();
        for &g in &members {
            queue.extend_from_slice(&groups[g].1);
        }
        consumed.extend_from_slice(&members);
        fused.push((id, queue));
    }
    consumed.sort_unstable();
    consumed.dedup();
    for &g in consumed.iter().rev() {
        groups.remove(g);
    }
    groups.extend(fused);
    groups.sort_by_key(|&(s, _)| s);

    let specs: Vec<ShardSpec> = groups
        .into_iter()
        .map(|(shard, queue)| ShardSpec::solo_greedy(shard, queue))
        .collect();
    (
        simulate(&specs, cfg).expect("valid config"),
        outcome.new_shard_count(),
    )
}

/// Empty blocks of the shards the merge acts on: the original small shards
/// (contract ids `0..small_count` by construction) and, after merging,
/// their merged successors (which keep the lowest member id) and leftovers.
/// Normalised by the original small-shard count so before/after compare the
/// same denominator.
fn small_shard_empties(run: &RunReport, small_count: usize) -> f64 {
    let total: usize = run
        .shards
        .iter()
        .filter(|s| !s.shard.is_max_shard() && (s.shard.0 as usize) < small_count)
        .map(|s| s.empty_blocks)
        .sum();
    total as f64 / small_count as f64
}

fn measure(small_count: usize, repeats: u64) -> Avg {
    let mut acc = Avg::default();
    for seed in 0..repeats {
        let sizes = small_sizes(small_count, seed);
        let w = Workload::with_small_shards(200, 9, small_count, &sizes, default_fees(), seed);
        // Empty blocks are counted within the paper's fixed 212 s window
        // (the Sec. VI-B1 balanced-run duration).
        let rt = RuntimeConfig {
            seed,
            empty_block_window: Some(SimTime::from_secs(212)),
            ..RuntimeConfig::default()
        };
        let ethereum = simulate_ethereum(w.fees(), 1, &rt).expect("valid config");

        let before: SystemReport = ShardingSystem::testbed(rt.clone())
            .run(&w)
            .expect("valid config");
        let ours: SystemReport = ShardingSystem::new(SystemConfig {
            runtime: rt.clone(),
            merging: Some(MergingConfig {
                lower_bound: LOWER_BOUND,
                ..MergingConfig::default()
            }),
            epoch: seed,
            ..SystemConfig::default()
        })
        .run(&w)
        .expect("valid config");
        let (random_run, random_shards) = run_randomized(&w, &rt, seed);

        acc.imp_before += throughput_improvement(&ethereum, &before.run);
        acc.imp_ours += throughput_improvement(&ethereum, &ours.run);
        acc.imp_random += throughput_improvement(&ethereum, &random_run);
        acc.empty_before += small_shard_empties(&before.run, small_count);
        acc.empty_ours += small_shard_empties(&ours.run, small_count);
        acc.empty_random += small_shard_empties(&random_run, small_count);
        acc.shards_ours += ours.merge.as_ref().map_or(0, |m| m.new_shards) as f64;
        acc.shards_random += random_shards as f64;
    }
    let n = repeats as f64;
    Avg {
        imp_before: acc.imp_before / n,
        imp_ours: acc.imp_ours / n,
        imp_random: acc.imp_random / n,
        empty_before: acc.empty_before / n,
        empty_ours: acc.empty_ours / n,
        empty_random: acc.empty_random / n,
        shards_ours: acc.shards_ours / n,
        shards_random: acc.shards_random / n,
    }
}

/// Runs the whole Fig. 3(c)–(g) sweep.
pub fn run(quick: bool) -> MergeFigures {
    let repeats = if quick { 5 } else { 30 };
    let data: Vec<(usize, Avg)> = (2..=7).map(|k| (k, measure(k, repeats))).collect();

    let series = |f: fn(&Avg) -> f64| -> Vec<(f64, f64)> {
        data.iter().map(|&(k, ref a)| (k as f64, f(a))).collect()
    };
    let mean = |f: fn(&Avg) -> f64| -> f64 {
        data.iter().map(|(_, a)| f(a)).sum::<f64>() / data.len() as f64
    };

    let empty_reduction = 1.0 - mean(|a| a.empty_ours) / mean(|a| a.empty_before).max(1e-9);
    let imp_loss = 1.0 - mean(|a| a.imp_ours) / mean(|a| a.imp_before).max(1e-9);
    // The serialization cost of merging shows at the high end of the sweep,
    // where the merged shard carries the most transactions.
    let last = data.last().map(|&(_, a)| a).unwrap_or_default();
    let imp_loss_at_max = 1.0 - last.imp_ours / last.imp_before.max(1e-9);
    let imp_gain_vs_random = mean(|a| a.imp_ours) / mean(|a| a.imp_random).max(1e-9) - 1.0;
    let empty_gain_vs_random = 1.0 - mean(|a| a.empty_ours) / mean(|a| a.empty_random).max(1e-9);
    let shard_gain = mean(|a| a.shards_ours) / mean(|a| a.shards_random).max(1e-9) - 1.0;
    let setup_note = format!(
        "9 shards, 2-7 small (1-9 txs), 200 txs, 1 blk/min, L = {LOWER_BOUND}, {repeats} seeds/point"
    );

    MergeFigures {
        c: ExperimentResult {
            id: "fig3c".into(),
            title: "Empty blocks before/after inter-shard merging".into(),
            x_label: "small shards".into(),
            y_label: "empty blocks per small shard".into(),
            series: vec![
                Series::new("before merging", series(|a| a.empty_before)),
                Series::new("after merging", series(|a| a.empty_ours)),
            ],
            notes: vec![
                setup_note.clone(),
                format!(
                    "average empty-block reduction {:.0}% (paper: 90%)",
                    empty_reduction * 100.0
                ),
                "counts cover the shards the merge acts on; absolute scale differs from the \
                 paper's ~152/shard (its quoted 1 blk/min rate cannot produce 152 blocks in \
                 212 s) — the reduction ratio is the reproduced result"
                    .into(),
            ],
        },
        d: ExperimentResult {
            id: "fig3d".into(),
            title: "Throughput improvement before/after merging".into(),
            x_label: "small shards".into(),
            y_label: "throughput improvement".into(),
            series: vec![
                Series::new("before merging", series(|a| a.imp_before)),
                Series::new("after merging", series(|a| a.imp_ours)),
            ],
            notes: vec![
                setup_note.clone(),
                format!(
                    "merging costs {:.0}% of the throughput improvement on average and \
                     {:.0}% at 7 small shards (paper: 14%); at few small shards merging \
                     can even help by shortening the max-over-shards tail",
                    imp_loss * 100.0,
                    imp_loss_at_max * 100.0
                ),
            ],
        },
        e: ExperimentResult {
            id: "fig3e".into(),
            title: "Throughput: our merging vs. randomized merging".into(),
            x_label: "small shards".into(),
            y_label: "throughput improvement".into(),
            series: vec![
                Series::new("randomized merging", series(|a| a.imp_random)),
                Series::new("our merging", series(|a| a.imp_ours)),
            ],
            notes: vec![
                setup_note.clone(),
                format!(
                    "ours improves throughput {:.0}% over the randomized baseline (paper: 11%)",
                    imp_gain_vs_random * 100.0
                ),
            ],
        },
        f: ExperimentResult {
            id: "fig3f".into(),
            title: "Empty blocks: our merging vs. randomized merging".into(),
            x_label: "small shards".into(),
            y_label: "empty blocks per small shard".into(),
            series: vec![
                Series::new("randomized merging", series(|a| a.empty_random)),
                Series::new("our merging", series(|a| a.empty_ours)),
            ],
            notes: vec![
                setup_note.clone(),
                format!(
                    "ours leaves {:.0}% fewer empty blocks than randomized merging (paper: 4%)",
                    empty_gain_vs_random * 100.0
                ),
            ],
        },
        g: ExperimentResult {
            id: "fig3g".into(),
            title: "New shards: our merging vs. randomized merging".into(),
            x_label: "small shards".into(),
            y_label: "new shards".into(),
            series: vec![
                Series::new("randomized merging", series(|a| a.shards_random)),
                Series::new("our merging", series(|a| a.shards_ours)),
            ],
            notes: vec![
                setup_note,
                format!(
                    "ours forms {:.0}% more new shards (paper: 59%)",
                    shard_gain * 100.0
                ),
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_wins_on_every_headline() {
        let figs = run(true);
        // (c): merging reduces empties substantially.
        let before = figs.c.series[0].mean_y();
        let after = figs.c.series[1].mean_y();
        assert!(
            after < before * 0.55,
            "empty reduction too weak: {after:.2} vs {before:.2}"
        );
        // (e): ours ≥ random on throughput (averaged over the sweep).
        assert!(
            figs.e.series[1].mean_y() >= figs.e.series[0].mean_y() * 0.95,
            "ours {:.2} vs random {:.2}",
            figs.e.series[1].mean_y(),
            figs.e.series[0].mean_y()
        );
        // (g): ours forms at least as many shards as random.
        assert!(figs.g.series[1].mean_y() >= figs.g.series[0].mean_y());
        // (g): more small shards → more new shards for ours.
        let ours = &figs.g.series[1].points;
        assert!(ours.last().unwrap().1 >= ours.first().unwrap().1);
    }
}
