//! Fig. 5: the large-scale simulations (Sec. VI-E).
//!
//! * (a) number of new shards formed by the merging game vs. the optimal
//!   `⌊Σ sizes / L⌋`, up to 1000 small shards.
//! * (b) number of distinct transaction sets reached by the selection game
//!   vs. the optimal (= miner count), up to 1000 miners.

use crate::experiments::grid_scheduler;
use crate::report::{ExperimentResult, Series};
use cshard_baselines::{optimal_distinct_sets, optimal_new_shards};
use cshard_games::selection::{best_reply_equilibrium, SelectionConfig};
use cshard_games::{iterative_merge, MergingConfig};
use cshard_workload::FeeDistribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fig. 5(a): merging at scale.
pub fn run_a(quick: bool) -> ExperimentResult {
    let xs: Vec<usize> = if quick {
        vec![50, 100, 200]
    } else {
        vec![100, 200, 400, 600, 800, 1000]
    };
    let lower_bound = 22u64;
    let config = MergingConfig {
        lower_bound,
        ..MergingConfig::default()
    };
    // Grid points are seeded by `n` alone, so they are independent tasks.
    let points = grid_scheduler().map(xs.clone(), |_, n| {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        // "We randomly generate different numbers of transactions in
        // multiple small shards" — 1..=9 like the testbed runs.
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=9u64)).collect();
        let probs = vec![0.5; n];
        let out = iterative_merge(&sizes, &probs, &config, n as u64);
        (
            (n as f64, out.new_shard_count() as f64),
            (n as f64, optimal_new_shards(&sizes, lower_bound) as f64),
        )
    });
    type Points = Vec<(f64, f64)>;
    let (ours, optimal): (Points, Points) = points.into_iter().unzip();
    let ratio: f64 = ours
        .iter()
        .zip(&optimal)
        .map(|(&(_, o), &(_, opt))| o / opt.max(1.0))
        .sum::<f64>()
        / ours.len() as f64;
    ExperimentResult {
        id: "fig5a".into(),
        title: "Merging at scale: new shards vs. optimal".into(),
        x_label: "small shards".into(),
        y_label: "new shards".into(),
        series: vec![
            Series::new("our shard merging", ours),
            Series::new("optimal", optimal),
        ],
        notes: vec![
            format!("shard sizes ~U(1,9), L = {lower_bound}"),
            format!(
                "our merging reaches {:.0}% of the optimal shard count on average \
                 (paper: ~80%, i.e. a 20% loss)",
                ratio * 100.0
            ),
        ],
    }
}

/// Fig. 5(b): selection at scale.
///
/// The paper records "the numbers of transaction sets": miners choose among
/// candidate *sets* (a block's worth of transactions each), and the optimum
/// is every miner on a different set. We build `miners` candidate sets of
/// `capacity` transactions with randomly generated fees and let the
/// congestion game (payoff = set fee / holders) run to equilibrium; the
/// metric is how many distinct sets end up selected. Heavy-tailed fees
/// produce the degeneracy the paper blames for its ~50% average loss: when
/// one set's fee dwarfs the rest, sharing it still beats owning a cheap
/// set, and miners pile onto it.
pub fn run_b(quick: bool) -> ExperimentResult {
    let xs: Vec<usize> = if quick {
        vec![50, 100, 200]
    } else {
        vec![100, 200, 400, 600, 800, 1000]
    };
    let capacity = 10usize;
    let repeats = if quick { 3 } else { 10 };
    // Flatten (miners, repeat) into independent tasks — each is seeded by
    // its own pair, so the fan-out is deterministic and load-balanced
    // (the 1000-miner repeats dominate; one point would bottleneck).
    let pairs: Vec<(usize, usize)> = xs
        .iter()
        .flat_map(|&miners| (0..repeats).map(move |rep| (miners, rep)))
        .collect();
    let counts = grid_scheduler().map(pairs, |_, (miners, rep)| {
        let mut rng = ChaCha8Rng::seed_from_u64((miners * 31 + rep) as u64 ^ 0xBEEF);
        // Candidate-set fee = sum of `capacity` heavy-tailed tx fees.
        let fee_model = FeeDistribution::Zipf {
            max: 50_000,
            s: 1.1,
        };
        let set_fees: Vec<u64> = (0..miners)
            .map(|_| (0..capacity).map(|_| fee_model.sample(&mut rng)).sum())
            .collect();
        // Each miner picks one set; staggered initial choices.
        let initial: Vec<Vec<usize>> = (0..miners).map(|m| vec![m]).collect();
        let out = best_reply_equilibrium(
            &set_fees,
            &initial,
            &SelectionConfig {
                capacity: 1,
                max_rounds: 10_000,
            },
        );
        out.covered_tx_count() as f64
    });
    let mut ours = Vec::new();
    let mut optimal = Vec::new();
    for (i, &miners) in xs.iter().enumerate() {
        let distinct_sum: f64 = counts[i * repeats..(i + 1) * repeats].iter().sum();
        ours.push((miners as f64, distinct_sum / repeats as f64));
        optimal.push((
            miners as f64,
            optimal_distinct_sets(miners, miners, 1) as f64,
        ));
    }
    let ratio: f64 = ours
        .iter()
        .zip(&optimal)
        .map(|(&(_, o), &(_, opt))| o / opt.max(1.0))
        .sum::<f64>()
        / ours.len() as f64;
    ExperimentResult {
        id: "fig5b".into(),
        title: "Selection at scale: distinct transaction sets vs. optimal".into(),
        x_label: "miners".into(),
        y_label: "distinct transaction sets".into(),
        series: vec![
            Series::new("our transaction selection", ours),
            Series::new("optimal", optimal),
        ],
        notes: vec![
            format!(
                "one candidate set per miner, {capacity} Zipf(1.1) fees per set, \
                 {repeats} repeats/point"
            ),
            format!(
                "the equilibrium reaches {:.0}% of the optimal distinct-set count on average \
                 (paper: ~50%); the loss concentrates where a few set fees dominate, exactly \
                 the degeneracy the paper describes",
                ratio * 100.0
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_is_near_but_below_optimal() {
        let r = run_a(true);
        for (o, opt) in r.series[0].points.iter().zip(&r.series[1].points) {
            assert!(o.1 <= opt.1 + 1e-9, "beat the oracle at {}", o.0);
            assert!(
                o.1 >= opt.1 * 0.4,
                "too far from optimal at {}: {} vs {}",
                o.0,
                o.1,
                opt.1
            );
        }
    }

    #[test]
    fn selection_is_below_optimal_but_grows() {
        let r = run_b(true);
        let ours = &r.series[0].points;
        let opt = &r.series[1].points;
        for (o, p) in ours.iter().zip(opt) {
            assert!(o.1 <= p.1 + 1e-9);
            assert!(o.1 >= 1.0);
        }
        assert!(ours.last().unwrap().1 > ours.first().unwrap().1);
    }
}
