//! Fig. 1(d): shard safety vs. shard size for 25 % / 33 % adversaries.

use crate::report::{ExperimentResult, Series};
use cshard_security::{shard_safety_curve, CorruptionThreshold};

/// Runs the Fig. 1(d) reproduction.
pub fn run() -> ExperimentResult {
    let sizes = (5..=100).step_by(5).map(|n| n as u64);
    let curve = |f: f64| -> Vec<(f64, f64)> {
        shard_safety_curve(sizes.clone(), f, CorruptionThreshold::Majority)
            .into_iter()
            .map(|(n, s)| (n as f64, s))
            .collect()
    };
    let c25 = curve(0.25);
    let c33 = curve(0.33);
    let s30 = c33.iter().find(|&&(n, _)| n == 30.0).map(|&(_, s)| s);
    let mut notes = vec![
        "safety = P(Bin(n, f) ≤ ⌊n/2⌋): corruption needs a strict in-shard majority under PoW"
            .to_string(),
    ];
    if let Some(s) = s30 {
        notes.push(format!(
            "33% adversary, 30-miner shard: corruption probability {:.4} — 'almost 0', \
             matching the paper's caption",
            1.0 - s
        ));
    }
    ExperimentResult {
        id: "fig1d".into(),
        title: "Shard safety vs. miners per shard".into(),
        x_label: "miners in shard".into(),
        y_label: "safety".into(),
        series: vec![
            Series::new("25% adversary", c25),
            Series::new("33% adversary", c33),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_the_paper_shape() {
        let r = run();
        let c25 = &r.series[0].points;
        let c33 = &r.series[1].points;
        // 25% dominates 33% everywhere.
        for (a, b) in c25.iter().zip(c33) {
            assert!(a.1 >= b.1, "at n={}: {} < {}", a.0, a.1, b.1);
        }
        // Both approach 1 with shard size.
        assert!(c25.last().unwrap().1 > 0.9999);
        assert!(c33.last().unwrap().1 > 0.99);
        // The caption's point: 30 miners vs 33% → corruption ≈ 0.
        let s30 = c33.iter().find(|p| p.0 == 30.0).unwrap().1;
        assert!(s30 > 0.97);
    }
}
