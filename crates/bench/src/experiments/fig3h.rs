//! Fig. 3(h): the intra-shard transaction selection algorithm.
//!
//! Sec. VI-D: 200 transactions in a single shard, 1–9 miners, one block per
//! minute. The improvement compares the congestion-game equilibrium
//! selection against the same shard with identical-greedy miners (which is
//! Ethereum's behaviour at any miner count, per Table I).

use crate::experiments::default_fees;
use crate::report::{ExperimentResult, Series};
use cshard_core::throughput_improvement;
use cshard_core::{simulate, RuntimeConfig, SelectionStrategy, ShardSpec};
use cshard_primitives::ShardId;
use cshard_workload::Workload;

fn spec(fees: Vec<u64>, miners: usize, strategy: SelectionStrategy) -> ShardSpec {
    ShardSpec {
        shard: ShardId::new(0),
        fees,
        miners,
        strategy,
    }
}

/// Runs the Fig. 3(h) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let repeats = if quick { 4 } else { 20 };
    let mut points = Vec::new();
    for miners in 1..=9usize {
        let mut imp = 0.0;
        for seed in 0..repeats {
            let w = Workload::uniform_contracts(200, 0, default_fees(), seed);
            let cfg = RuntimeConfig {
                seed,
                ..RuntimeConfig::default()
            };
            let greedy = simulate(
                &[spec(w.fees(), miners, SelectionStrategy::IdenticalGreedy)],
                &cfg,
            )
            .expect("valid config");
            let equilibrium = simulate(
                &[spec(
                    w.fees(),
                    miners,
                    SelectionStrategy::Equilibrium { max_rounds: 2000 },
                )],
                &cfg,
            )
            .expect("valid config");
            imp += throughput_improvement(&greedy, &equilibrium);
        }
        points.push((miners as f64, imp / repeats as f64));
    }
    let avg: f64 = points.iter().map(|&(_, y)| y).sum::<f64>() / points.len() as f64;
    let at9 = points.last().map(|&(_, y)| y).unwrap_or(0.0);
    ExperimentResult {
        id: "fig3h".into(),
        title: "Throughput improvement of intra-shard transaction selection".into(),
        x_label: "miners".into(),
        y_label: "throughput improvement".into(),
        series: vec![Series::new("equilibrium vs greedy", points)],
        notes: vec![
            format!("200 txs, single shard, 1 blk/min, {repeats} seeds/point"),
            format!("average improvement {avg:.2}x, {at9:.2}x at 9 miners (paper: 3x average)"),
            "the gain comes from disjoint equilibrium sets confirming in parallel; epoch \
             re-assignment barriers keep it below the miner count"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_gains_grow_with_miners() {
        let r = run(true);
        let pts = &r.series[0].points;
        assert_eq!(pts.len(), 9);
        // One miner: both strategies are a solo queue — improvement ≈ 1.
        assert!((pts[0].1 - 1.0).abs() < 0.25, "1-miner: {:.2}", pts[0].1);
        // Nine miners: a clear win.
        assert!(pts[8].1 > 1.6, "9-miner improvement {:.2}", pts[8].1);
        assert!(pts[8].1 > pts[1].1, "not growing with miners");
    }
}
