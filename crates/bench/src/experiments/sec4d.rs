//! Sec. IV-D: the corruption-probability headline numbers, Eqs. (3)–(6).

use crate::report::{ExperimentResult, Series};
use cshard_security::corruption::{PAPER_EQ3_SHARD_SIZE, PAPER_EQ6_VALIDATORS};
use cshard_security::{
    inter_shard_corruption, selection_corruption, shard_safety, CorruptionThreshold,
};

/// Runs the Sec. IV-D reproduction: corruption probability vs. adversary
/// fraction for both attacks (`l → ∞`), with the paper's two 25 % headline
/// values called out.
pub fn run() -> ExperimentResult {
    let fractions: Vec<f64> = (10..=33).step_by(1).map(|p| p as f64 / 100.0).collect();
    let merge_curve: Vec<(f64, f64)> = fractions
        .iter()
        .map(|&f| {
            let p_s = shard_safety(PAPER_EQ3_SHARD_SIZE, f, CorruptionThreshold::Majority);
            (f, inter_shard_corruption(f, p_s, None))
        })
        .collect();
    let select_curve: Vec<(f64, f64)> = fractions
        .iter()
        .map(|&f| {
            (
                f,
                selection_corruption(f, 200, None, |_| PAPER_EQ6_VALIDATORS),
            )
        })
        .collect();

    let merge_at_25 = merge_curve
        .iter()
        .find(|&&(f, _)| (f - 0.25).abs() < 1e-9)
        .map(|&(_, v)| v)
        .unwrap_or(f64::NAN);
    let select_at_25 = select_curve
        .iter()
        .find(|&&(f, _)| (f - 0.25).abs() < 1e-9)
        .map(|&(_, v)| v)
        .unwrap_or(f64::NAN);

    ExperimentResult {
        id: "sec4d".into(),
        title: "Corruption probabilities of the two game mechanisms".into(),
        x_label: "adversary fraction f".into(),
        y_label: "corruption probability (l → ∞)".into(),
        series: vec![
            Series::new("inter-shard merging, Eq. (3)", merge_curve),
            Series::new("intra-shard selection, Eq. (6)", select_curve),
        ],
        notes: vec![
            format!(
                "Eq. (3) at f = 0.25: {merge_at_25:.2e} (paper: 8e-6; calibrated shard size \
                 {PAPER_EQ3_SHARD_SIZE})"
            ),
            format!(
                "Eq. (6) at f = 0.25, N = 200 fee units: {select_at_25:.2e} (paper: 7e-7; \
                 calibrated {PAPER_EQ6_VALIDATORS} validators per transaction)"
            ),
            "both attacks need the adversary to hold the leader role for consecutive rounds \
             AND majority-corrupt the target — the product stays negligible below 33%"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_are_in_the_papers_decades() {
        let r = run();
        let merge_25 = r.series[0]
            .points
            .iter()
            .find(|p| (p.0 - 0.25).abs() < 1e-9)
            .unwrap()
            .1;
        let select_25 = r.series[1]
            .points
            .iter()
            .find(|p| (p.0 - 0.25).abs() < 1e-9)
            .unwrap()
            .1;
        assert!((1e-6..1e-5).contains(&merge_25), "Eq.(3) {merge_25:.2e}");
        assert!((1e-7..1e-6).contains(&select_25), "Eq.(6) {select_25:.2e}");
    }

    #[test]
    fn corruption_grows_with_adversary() {
        let r = run();
        for s in &r.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{} not monotone at f={}", s.name, w[0].0);
            }
        }
    }
}
