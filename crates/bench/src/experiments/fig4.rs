//! Fig. 4: the ChainSpace comparison.
//!
//! * (a) throughput improvement, our sharding vs. ChainSpace-style random
//!   sharding, 1–9 shards. Sec. VI-B2 unifies the confirmation speed at 76
//!   transactions per second per miner (mining difficulty 0xd79), so the
//!   runtime's block interval is `capacity / 76` seconds.
//! * (b) communication times per shard vs. the number of injected 3-input
//!   transactions: zero for the contract-centric design (every multi-input
//!   transaction lives wholly inside the MaxShard), linear for ChainSpace.
//! * (c) communication times per shard during the merging process: the
//!   constant 2 of parameter unification (submit statistics + receive the
//!   broadcast), independent of the number of small shards.

use crate::experiments::{default_fees, grid_config, grid_scheduler};
use crate::report::{ExperimentResult, Series};
use cshard_baselines::ChainspacePlacement;
use cshard_core::simulate_ethereum;
use cshard_core::system::SystemConfig;
use cshard_core::throughput_improvement;
use cshard_core::{PropagationModel, Runtime, RuntimeConfig, ShardingSystem};
use cshard_games::MergingConfig;
use cshard_network::{CommKind, CommStats, LatencyModel};
use cshard_primitives::SimTime;
use cshard_workload::Workload;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sec. VI-B2: one miner confirms 76 transactions per second. Shared
/// with the settlement grid (`experiments settle`), which runs the same
/// fig4(b)-style point under batched crosslinks.
pub(crate) fn chainspace_runtime(seed: u64, capacity: usize) -> RuntimeConfig {
    let interval = capacity as f64 / 76.0;
    RuntimeConfig {
        block_capacity: capacity,
        mean_block_interval: SimTime::from_secs_f64(interval),
        propagation: PropagationModel::Window(SimTime::from_secs_f64(interval)),
        empty_block_window: None,
        seed,
        ..RuntimeConfig::default()
    }
}

/// Fig. 4(a): throughput improvement, ours vs. ChainSpace.
pub fn run_a(quick: bool) -> ExperimentResult {
    let total = if quick { 2_400 } else { 24_000 };
    let repeats = if quick { 2 } else { 5 };
    let mut ours_pts = Vec::new();
    let mut cs_pts = Vec::new();
    for shards in 1..=9usize {
        let mut ours_imp = 0.0;
        let mut cs_imp = 0.0;
        for seed in 0..repeats {
            let cfg = chainspace_runtime(seed, 10);
            let w = Workload::uniform_contracts(total, shards - 1, default_fees(), seed);
            let ethereum = simulate_ethereum(w.fees(), 1, &cfg).expect("valid config");

            // Ours: contract-centric formation.
            let sharded = ShardingSystem::testbed(cfg.clone())
                .run(&w)
                .expect("valid config");
            ours_imp += throughput_improvement(&ethereum, &sharded.run);

            // ChainSpace: uniform random placement of the same
            // transactions, run as protocol drivers on the shared loop
            // (home-queue mining plus scheduled 2PC validation rounds;
            // the mining trajectory — and so the throughput — matches a
            // plain sharded run of the same placement).
            let placement = ChainspacePlacement::place(&w.transactions, shards, seed);
            let fees = w.fees();
            let cs_run = Runtime::builder()
                .scheduler(grid_config())
                .run(placement.drivers(&fees, &cfg, LatencyModel::wide_area()))
                .expect("well-formed drivers")
                .report;
            cs_imp += throughput_improvement(&ethereum, &cs_run);
        }
        ours_pts.push((shards as f64, ours_imp / repeats as f64));
        cs_pts.push((shards as f64, cs_imp / repeats as f64));
    }
    ExperimentResult {
        id: "fig4a".into(),
        title: "Throughput improvement: our sharding vs. ChainSpace".into(),
        x_label: "shards".into(),
        y_label: "throughput improvement".into(),
        series: vec![
            Series::new("our sharding", ours_pts),
            Series::new("ChainSpace", cs_pts),
        ],
        notes: vec![
            format!("{total} txs, 76 tx/s per miner, {repeats} seeds/point"),
            "both schemes parallelize equally well — the difference is communication \
             (Fig. 4(b)), not throughput (paper: 'not worse than ChainSpace')"
                .into(),
        ],
    }
}

/// Fig. 4(b): per-shard communication vs. number of 3-input transactions.
pub fn run_b(quick: bool) -> ExperimentResult {
    let shards = 9usize;
    let repeats = if quick { 3 } else { 20 };
    let xs: Vec<usize> = if quick {
        vec![0, 500, 1000, 2000]
    } else {
        vec![0, 4_000, 8_000, 12_000, 16_000, 20_000]
    };
    let mut ours_pts = Vec::new();
    let mut cs_pts = Vec::new();
    for &count in &xs {
        // The repeats are independently seeded runs — fan them out.
        let per_seed = grid_scheduler().map((0..repeats).collect(), |_, seed| {
            let w = Workload::three_input(count, 3, default_fees(), seed);
            // ChainSpace: random placement, then an actual run — each 2PC
            // validation round is a scheduled event that books one
            // communication time as it fires (no post-hoc bookkeeping).
            let placement = ChainspacePlacement::place(&w.transactions, shards, seed);
            let cfg = chainspace_runtime(seed, 10);
            let fees = w.fees();
            let outcome = Runtime::builder()
                .comm_stats(CommStats::new())
                .run(placement.drivers(&fees, &cfg, LatencyModel::wide_area()))
                .expect("well-formed drivers");
            // One snapshot per run instead of ad-hoc per-kind reads: the
            // 2PC rounds are the only kind booked, and the snapshot is
            // what the settle grid diffs against its crosslink runs.
            let cs = outcome.comm.snapshot();
            assert_eq!(cs.total(), cs.for_kind(CommKind::CrossShardValidation));

            // Ours: every 3-input tx is MaxShard-internal → zero rounds.
            let sharded = ShardingSystem::testbed(chainspace_runtime(seed, 10));
            let report = sharded.run(&w).expect("valid config");
            assert_eq!(report.comm.snapshot().total(), 0);
            cs.per_shard_average(shards)
        });
        let cs_avg: f64 = per_seed.iter().sum();
        ours_pts.push((count as f64, 0.0));
        cs_pts.push((count as f64, cs_avg / repeats as f64));
    }
    ExperimentResult {
        id: "fig4b".into(),
        title: "Communication times per shard vs. 3-input transactions".into(),
        x_label: "3-input transactions".into(),
        y_label: "communication times per shard".into(),
        series: vec![
            Series::new("our sharding", ours_pts),
            Series::new("ChainSpace", cs_pts),
        ],
        notes: vec![
            format!("9 shards, {repeats} repeats/point, 2 rounds per cross-shard tx"),
            "ours stays at zero — multi-input senders classify into the MaxShard, whose \
             miners hold all required state (paper: identical result)"
                .into(),
        ],
    }
}

/// Fig. 4(c): per-shard communication during merging vs. small-shard count.
pub fn run_c(quick: bool) -> ExperimentResult {
    let total = if quick { 2_400 } else { 24_000 };
    let mut pts = Vec::new();
    for small in 0..=6usize {
        let shards = 7;
        let sizes: Vec<u64> = {
            // "We only inject 1000 transactions into a small shard" —
            // scaled to the workload size.
            let mut rng = ChaCha8Rng::seed_from_u64(small as u64);
            (0..small)
                .map(|_| (total as u64 / 24).max(1) + rng.gen_range(0..10))
                .collect()
        };
        let w = Workload::with_small_shards(total, shards, small, &sizes, default_fees(), 1);
        let report = ShardingSystem::new(SystemConfig {
            runtime: chainspace_runtime(1, 10),
            merging: Some(MergingConfig {
                // Small = under ~1/12 of the load: the injected small
                // shards (total/24 txs, mirroring the paper's 1000 of
                // 24000) qualify; the regular shards (>= total/7) do not.
                lower_bound: total as u64 / 12,
                ..MergingConfig::default()
            }),
            ..SystemConfig::default()
        })
        .run(&w)
        .expect("valid config");
        let per_shard = if small == 0 {
            0.0
        } else {
            report.comm.total() as f64 / small as f64
        };
        pts.push((small as f64, per_shard));
    }
    ExperimentResult {
        id: "fig4c".into(),
        title: "Communication times per shard during merging".into(),
        x_label: "small shards".into(),
        y_label: "communication times per shard".into(),
        series: vec![Series::new("our merging (unification)", pts)],
        notes: vec![
            format!("7 shards, {total} txs total"),
            "constant 2 per participating shard: submit the transaction count to the \
             verifiable leader, receive the unified-parameter broadcast (paper: 2)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_schemes_are_comparable() {
        let r = run_a(true);
        let ours = &r.series[0].points;
        let cs = &r.series[1].points;
        // Both improve with shards and end within 40% of each other.
        assert!(ours[8].1 > 2.0, "ours at 9: {:.2}", ours[8].1);
        assert!(cs[8].1 > 2.0, "ChainSpace at 9: {:.2}", cs[8].1);
        let ratio = ours[8].1 / cs[8].1;
        assert!((0.6..=1.7).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn fig4b_ours_zero_chainspace_linear() {
        let r = run_b(true);
        let ours = &r.series[0].points;
        let cs = &r.series[1].points;
        assert!(ours.iter().all(|&(_, y)| y == 0.0));
        // Linear: y at the last x ≈ (last x / mid x) × y at mid x.
        let mid = cs[2];
        let last = *cs.last().unwrap();
        let expected = last.0 / mid.0 * mid.1;
        assert!(
            (last.1 - expected).abs() / expected < 0.1,
            "not linear: {last:?} vs expected {expected:.1}"
        );
        // Scale: 2 rounds per cross-shard tx over 9 shards.
        assert!((last.1 - 2.0 * last.0 / 9.0).abs() / last.1 < 0.1);
    }

    #[test]
    fn fig4c_is_constant_two() {
        let r = run_c(true);
        for &(x, y) in &r.series[0].points {
            if x == 0.0 {
                assert_eq!(y, 0.0);
            } else {
                assert!((y - 2.0).abs() < 1e-9, "at {x}: {y}");
            }
        }
    }
}
