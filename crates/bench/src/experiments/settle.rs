//! The settlement grid: cross-shard messages per transaction vs. the
//! `cshard-settle` batch cap.
//!
//! The fig4(b) point charges ChainSpace-style 2PC two communication
//! times per cross-shard transaction. Batched settlement replaces the
//! per-transaction rounds with one `Crosslink` message per flushed
//! batch, so the messages-per-transaction curve should fall roughly as
//! `1 / cap` until the pair count floors it (at 9 shards there are at
//! most 72 ordered `(home, dest)` pairs, so one timeout flush per pair
//! bounds the cost from below). The headline acceptance point: cap 100
//! cuts messages by at least 10× against the per-transaction baseline.

use crate::experiments::fig4::chainspace_runtime;
use crate::experiments::{default_fees, grid_config, grid_scheduler};
use crate::report::{ExperimentResult, Series};
use cshard_baselines::ChainspacePlacement;
use cshard_core::{Runtime, SettleConfig};
use cshard_network::{CommStats, LatencyModel};
use cshard_primitives::SimTime;
use cshard_sim::SchedulerConfig;
use cshard_workload::Workload;

const SHARDS: usize = 9;
const SEED: u64 = 5;

/// The swept batch caps; cap 1 is the degenerate one-crosslink-per-
/// transfer ledger, included so the curve anchors at the unbatched end.
const CAPS: &[usize] = &[1, 2, 5, 10, 20, 50, 100];

/// Batched settlement with a timeout well past the run's active phase,
/// so batches fill to the cap instead of draining every default 500 ms
/// mining window.
fn wide(cap: usize) -> SettleConfig {
    SettleConfig {
        timeout: SimTime::from_secs(10),
        ..SettleConfig::batched(cap)
    }
}

/// Messages per cross-shard transaction for one run of the fig4(b)-style
/// point on an explicit scheduler. `settle = None` runs the
/// per-transaction 2PC baseline (two rounds per cross-shard tx).
fn messages_per_tx_on(count: usize, settle: Option<SettleConfig>, sched: SchedulerConfig) -> f64 {
    let w = Workload::three_input(count, 3, default_fees(), SEED);
    let placement = ChainspacePlacement::place(&w.transactions, SHARDS, SEED);
    let mut cfg = chainspace_runtime(SEED, 10);
    if let Some(settle) = settle {
        cfg.settle = settle;
    }
    let fees = w.fees();
    let outcome = Runtime::builder()
        .scheduler(sched)
        .comm_stats(CommStats::new())
        .run(placement.drivers(&fees, &cfg, LatencyModel::wide_area()))
        .expect("well-formed drivers");
    let cross = placement.cross_shard_count().max(1) as f64;
    outcome.comm.snapshot().total() as f64 / cross
}

/// [`messages_per_tx_on`] under the driver's `--threads` setting.
fn messages_per_tx(count: usize, settle: Option<SettleConfig>) -> f64 {
    messages_per_tx_on(count, settle, grid_config())
}

/// The `settle` experiment: per-tx 2PC baseline vs. batched crosslinks
/// over the cap sweep.
pub fn run(quick: bool) -> ExperimentResult {
    let count = if quick { 600 } else { 4_000 };
    let baseline = messages_per_tx(count, None);
    // Each cap is an independent run — fan them out on the grid.
    let batched = grid_scheduler().map(CAPS.to_vec(), |_, cap| {
        (cap as f64, messages_per_tx(count, Some(wide(cap))))
    });
    let baseline_pts: Vec<(f64, f64)> = CAPS.iter().map(|&c| (c as f64, baseline)).collect();
    let reduction = baseline
        / batched
            .last()
            .map_or(baseline, |&(_, y)| y.max(f64::MIN_POSITIVE));
    ExperimentResult {
        id: "settle".into(),
        title: "Cross-shard messages per tx vs. settlement batch cap".into(),
        x_label: "batch cap".into(),
        y_label: "messages per cross-shard tx".into(),
        series: vec![
            Series::new("per-tx 2PC (unbatched)", baseline_pts),
            Series::new("batched crosslinks", batched),
        ],
        notes: vec![
            format!("{SHARDS} shards, {count} 3-input txs, seed {SEED}, 10 s flush timeout"),
            format!("cap 100 reduction: {reduction:.1}× (acceptance floor: 10×)"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_100_cuts_messages_at_least_ten_x() {
        let r = run(true);
        let baseline = r.series[0].points[0].1;
        let (cap, batched) = *r.series[1].points.last().unwrap();
        assert_eq!(cap, 100.0);
        assert!(
            batched * 10.0 <= baseline,
            "cap 100: {batched:.3} msgs/tx vs baseline {baseline:.3}"
        );
    }

    #[test]
    fn batched_curve_is_monotone_in_the_cap() {
        let r = run(true);
        let pts = &r.series[1].points;
        for pair in pts.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "messages/tx rose with the cap: {pair:?}"
            );
        }
        // And even cap 1 never exceeds the 2-rounds-per-tx baseline.
        assert!(pts[0].1 <= r.series[0].points[0].1 + 1e-9);
    }

    #[test]
    fn grid_points_are_thread_count_invariant() {
        for settle in [None, Some(wide(7))] {
            let one = messages_per_tx_on(300, settle, SchedulerConfig::new(1));
            let four = messages_per_tx_on(300, settle, SchedulerConfig::new(4));
            let all = messages_per_tx_on(300, settle, SchedulerConfig::new(0));
            assert_eq!(one.to_bits(), four.to_bits(), "threads 1 vs 4 ({settle:?})");
            assert_eq!(one.to_bits(), all.to_bits(), "threads 1 vs 0 ({settle:?})");
        }
    }
}
