//! Fault-injection grid: measured vs. analytic corruption (Sec. IV-D)
//! plus leader-failover recovery under the VRF ranking.
//!
//! Unlike the closed-form `sec4d` experiment, this one *runs* the system:
//! real epochs with a PRF-chosen malicious enrolment, counting the
//! shard-epochs where the adversary actually holds a strict majority, and
//! real crash/failover sequences measuring recovery latency. The measured
//! corruption curve must track `1 − shard_safety(n_s, f, Majority)` at
//! the observed shard sizes within binomial sampling noise — the
//! empirical check of the paper's Eq. (3)–(6) inputs.

use crate::experiments::grid_scheduler;
use crate::report::{ExperimentResult, Series};
use cshard_faults::{measure_corruption, run_leader_faults, LeaderFaultPlan};
use cshard_primitives::SimTime;

/// Runs the faults grid. `quick` shrinks epoch counts for CI.
pub fn run(quick: bool) -> ExperimentResult {
    let (miners, epochs, txs) = if quick { (60, 12, 80) } else { (120, 60, 200) };
    let fractions: Vec<f64> = (0..=7).map(|i| 0.05 * i as f64).collect();

    // Corruption sweep: each fraction is an independent measurement, so
    // fan the grid points out (each is a pure function of its inputs).
    let measurements = grid_scheduler().map(fractions.clone(), |_, f| {
        measure_corruption(miners, f, epochs, txs, 0xFA017)
            .unwrap_or_else(|e| panic!("corruption measurement at f={f}: {e}"))
    });
    let measured: Vec<(f64, f64)> = measurements
        .iter()
        .map(|m| (m.malicious_fraction, m.measured_corruption))
        .collect();
    let analytic: Vec<(f64, f64)> = measurements
        .iter()
        .map(|m| (m.malicious_fraction, m.analytic_corruption))
        .collect();
    let worst_sigma = measurements
        .iter()
        .filter(|m| m.sampling_sigma() > 0.0)
        .map(|m| (m.measured_corruption - m.analytic_corruption).abs() / m.sampling_sigma())
        .fold(0.0f64, f64::max);
    let within = measurements.iter().all(|m| m.within_sigmas(4.0));

    // Failover sweep: crash the top-k ranked leaders of every epoch and
    // measure recovery latency (k timeouts) against the epoch interval.
    let timeout = SimTime::from_secs(10);
    let epoch_interval = SimTime::from_secs(120);
    let depths: Vec<usize> = (0..=4).collect();
    let failover: Vec<(f64, f64)> = depths
        .iter()
        .map(|&k| {
            let mut plan = LeaderFaultPlan::healthy(6, timeout, epoch_interval);
            for e in 0..plan.epochs {
                plan.crashed_ranks.insert(e, k);
            }
            let report = run_leader_faults(24, txs, &plan, 0xFA1_0FE)
                .unwrap_or_else(|e| panic!("failover run at depth {k}: {e}"));
            (k as f64, report.max_recovery_latency().as_secs_f64())
        })
        .collect();
    let worst_recovery = failover.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);

    // Leadership uniformity: the malicious-leader fraction should track f.
    let leader_track: Vec<(f64, f64)> = measurements
        .iter()
        .map(|m| (m.malicious_fraction, m.measured_leader_fraction))
        .collect();

    ExperimentResult {
        id: "faults".into(),
        title: "Fault injection: empirical corruption vs. Sec. IV-D bounds, VRF failover".into(),
        x_label: "adversary fraction f (corruption) / crashed ranks k (failover)".into(),
        y_label: "corrupted shard-epoch fraction / recovery latency (s)".into(),
        series: vec![
            Series::new("measured corruption", measured),
            Series::new("analytic 1 - shard_safety (Majority)", analytic),
            Series::new("malicious leader fraction", leader_track),
            Series::new("failover recovery latency (s) vs crashed ranks", failover),
        ],
        notes: vec![
            format!(
                "measured corruption within 4 binomial sigmas of the analytic bound at every \
                 f: {within} (worst deviation {worst_sigma:.2} sigma, {miners} miners, \
                 {epochs} epochs)"
            ),
            format!(
                "worst-case failover recovery {worst_recovery:.0} s = k x {timeout} timeout; \
                 stays under the {epoch_interval} epoch interval for k <= 4 — recovery within \
                 one epoch"
            ),
            "corruption = strict malicious majority in a shard-epoch; malicious miners chosen \
             by PRF rank, independent of the VRF assignment randomness"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_tracks_the_analytic_bound() {
        let r = run(true);
        assert_eq!(r.series.len(), 4);
        assert!(
            r.notes[0].contains("every f: true"),
            "corruption bound check failed: {}",
            r.notes[0]
        );
        // Endpoint sanity: no adversary, no corruption.
        assert_eq!(r.series[0].points[0], (0.0, 0.0));
    }

    #[test]
    fn failover_latency_grows_linearly_with_depth() {
        let r = run(true);
        let failover = &r.series[3].points;
        assert_eq!(failover[0], (0.0, 0.0), "healthy epochs recover instantly");
        for w in failover.windows(2) {
            assert!(w[1].1 >= w[0].1, "latency not monotone in depth");
        }
        // Depth 4 at a 10 s timeout: 40 s, inside the 120 s epoch.
        assert!(failover[4].1 <= 120.0);
    }
}
