//! Streaming-scale grid (`BENCH_scale.json`): epoch throughput and
//! reclassification churn as the account space grows 10³ → 10⁶.
//!
//! Each grid point builds a lazy [`cshard_workload::TxStream`] over the
//! configured account space — the stream materializes only the senders it
//! actually emits, so the 10⁶-account points cost no more to construct
//! than the 10³ ones — and drives it through
//! [`cshard_core::LongRun::run_stream`] under one of three arrival mixes:
//!
//! * **steady** — plain Poisson arrivals with light diversification,
//! * **bursty** — an 8× burst episode mid-run,
//! * **spam** — an adversarial flood of fresh minimum-fee senders.
//!
//! Reported per point and mix:
//!
//! * epochs/sec — streamed epochs per host second (wall-clock measured
//!   here, bench-side, per the ND001 split),
//! * reclassified fraction — dirty senders over dirty + carried, straight
//!   from the classify stage's counters. Repeat-sender mixes must sit
//!   well below 1.0 (the churn-proportionality saving); the spam mix
//!   pushes toward 1.0 because every flood sender is fresh.
//!
//! Everything except the wall-clock series is thread-count invariant — a
//! test pins that at workers 1/4/0.

use crate::experiments::grid_config;
use crate::report::{ExperimentResult, Series};
use cshard_core::{LongRun, LongRunConfig, RuntimeConfig};
use cshard_primitives::SimTime;
use cshard_workload::{BurstEpisode, SpamFlood, StreamConfig, TxStream};
use std::time::Instant;

/// Simulated time per epoch seal.
const EPOCH_INTERVAL: SimTime = SimTime::from_secs(60);

/// The three arrival mixes of the grid.
const MIXES: &[&str] = &["steady", "bursty", "spam"];

struct Point {
    accounts: u64,
    epochs_per_sec: f64,
    reclassified_fraction: f64,
    epochs: u64,
}

fn stream_for(mix: &str, accounts: u64) -> TxStream {
    let base = StreamConfig {
        accounts,
        contracts: 8,
        seed: accounts ^ 0xC5_44AD,
        ..StreamConfig::default()
    };
    let config = match mix {
        "steady" => base,
        "bursty" => StreamConfig {
            bursts: vec![BurstEpisode {
                start: SimTime::from_secs(60),
                end: SimTime::from_secs(120),
                rate_multiplier: 8.0,
            }],
            ..base
        },
        "spam" => StreamConfig {
            spam: Some(SpamFlood {
                start: SimTime::from_secs(60),
                end: SimTime::from_secs(200),
                fraction: 0.6,
            }),
            ..base
        },
        other => unreachable!("unknown mix {other}"),
    };
    TxStream::new(config)
}

fn measure(mix: &str, accounts: u64, txs: usize) -> Point {
    let mut lr = LongRun::new(LongRunConfig {
        runtime: RuntimeConfig {
            seed: accounts,
            scheduler: grid_config(),
            ..RuntimeConfig::default()
        },
        merging: None,
        ..LongRunConfig::default()
    });
    let stream = stream_for(mix, accounts).take(txs);
    let started = Instant::now();
    let reports = lr
        .run_stream(stream, EPOCH_INTERVAL)
        .expect("valid streamed grid point");
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let m = lr.pipeline_metrics();
    let (reclassified, carried) = (m.total_reclassified(), m.total_carried());
    Point {
        accounts,
        epochs_per_sec: reports.len() as f64 / wall,
        reclassified_fraction: reclassified as f64 / (reclassified + carried).max(1) as f64,
        epochs: reports.len() as u64,
    }
}

/// The `scale` experiment: streamed epoch throughput and reclassification
/// churn, accounts 10³ → 10⁶ under steady/bursty/spam arrival mixes.
pub fn run(quick: bool) -> ExperimentResult {
    let (accounts, txs): (Vec<u64>, usize) = if quick {
        (vec![1_000, 100_000, 1_000_000], 400)
    } else {
        (vec![1_000, 10_000, 100_000, 1_000_000], 2_000)
    };
    let mut series = Vec::new();
    let mut notes = vec![
        format!(
            "{txs} transactions/point, {}s epochs, lazy stream (senders \
             materialized on emission only), scheduler workers from --threads",
            EPOCH_INTERVAL.as_millis() / 1_000
        ),
        "reclassified fraction = dirty senders / (dirty + carried) from the \
         classify stage; repeat-sender mixes stay below 1.0"
            .into(),
    ];
    for mix in MIXES {
        let points: Vec<Point> = accounts.iter().map(|&n| measure(mix, n, txs)).collect();
        // The churn-proportionality invariant: on the repeat-heavy
        // smallest-account point, carried senders must exist — full
        // reclassification every epoch would read exactly 1.0.
        let dense = points.first().expect("non-empty grid");
        assert!(
            dense.reclassified_fraction < 1.0,
            "{mix}: no carried senders at {} accounts (fraction {})",
            dense.accounts,
            dense.reclassified_fraction
        );
        assert!(dense.epochs >= 2, "{mix}: grid point ran too few epochs");
        let x = |p: &Point| p.accounts as f64;
        series.push(Series::new(
            format!("epochs/sec ({mix})"),
            points.iter().map(|p| (x(p), p.epochs_per_sec)).collect(),
        ));
        series.push(Series::new(
            format!("reclassified fraction ({mix})"),
            points
                .iter()
                .map(|p| (x(p), p.reclassified_fraction))
                .collect(),
        ));
        notes.push(format!(
            "{mix}: reclassified fraction {:.3} at 10³ accounts, {:.3} at the top point",
            points.first().expect("points").reclassified_fraction,
            points.last().expect("points").reclassified_fraction,
        ));
    }
    ExperimentResult {
        id: "scale".into(),
        title: "Streaming million-user scale grid".into(),
        x_label: "accounts".into(),
        y_label: "epochs/sec; reclassified fraction".into(),
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_reaches_a_million_accounts() {
        let r = run(true);
        // 3 mixes × 2 series each.
        assert_eq!(r.series.len(), 6);
        for s in &r.series {
            let last = s.points.last().expect("points");
            assert_eq!(last.0, 1_000_000.0, "{}: top point missing", s.name);
        }
        // Repeat-heavy steady point carries senders forward.
        let steady_fraction = &r.series[1];
        let dense = steady_fraction.points.first().expect("points");
        assert!(
            dense.1 < 1.0,
            "steady 10³-account point reclassified everything: {dense:?}"
        );
    }

    #[test]
    fn scale_series_are_thread_count_independent() {
        let fractions_at = |threads: usize| {
            crate::experiments::set_grid_threads(threads);
            let r = run(true);
            crate::experiments::set_grid_threads(0);
            // Keep only the deterministic series (drop wall-clock ones).
            r.series
                .into_iter()
                .filter(|s| s.name.starts_with("reclassified"))
                .map(|s| s.points)
                .collect::<Vec<_>>()
        };
        let seq = fractions_at(1);
        assert_eq!(seq, fractions_at(4));
        assert_eq!(seq, fractions_at(0));
    }
}
