//! Fig. 3(a)/(b): contract-centric sharding vs. Ethereum — throughput
//! improvement and empty blocks, for 1–9 shards.
//!
//! Sec. VI-B1: 200 transactions, uniform over `s` contract shards plus the
//! MaxShard, one miner per shard, one block per minute. The Ethereum
//! benchmark is the one-shard instance of the same system (the paper's
//! improvement curve is anchored at 1.0 for one shard, and Table I shows
//! extra miners do not speed the serialized chain up).

use crate::experiments::{default_fees, grid_scheduler};
use crate::report::{ExperimentResult, Series};
use cshard_core::simulate_ethereum;
use cshard_core::throughput_improvement;
use cshard_core::{RuntimeConfig, ShardingSystem};
use cshard_workload::Workload;

struct Point {
    improvement: f64,
    sharded_empties: f64,
    ethereum_empties: f64,
}

fn measure(shards: usize, repeats: u64) -> Point {
    let mut imp = 0.0;
    let mut se = 0.0;
    let mut ee = 0.0;
    for seed in 0..repeats {
        let w = Workload::uniform_contracts(200, shards - 1, default_fees(), seed);
        let cfg = RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        };
        let sharded = ShardingSystem::testbed(cfg.clone())
            .run(&w)
            .expect("valid config");
        let ethereum = simulate_ethereum(w.fees(), 1, &cfg).expect("valid config");
        imp += throughput_improvement(&ethereum, &sharded.run);
        se += sharded.run.empty_blocks_per_shard();
        ee += ethereum.empty_blocks_per_shard();
    }
    let n = repeats as f64;
    Point {
        improvement: imp / n,
        sharded_empties: se / n,
        ethereum_empties: ee / n,
    }
}

fn sweep(quick: bool) -> Vec<(usize, Point)> {
    let repeats = if quick { 4 } else { 20 };
    // Every shard count is an independently seeded measurement.
    grid_scheduler().map((1..=9).collect(), move |_, s| (s, measure(s, repeats)))
}

/// Fig. 3(a): throughput improvement vs. number of shards.
pub fn run_a(quick: bool) -> ExperimentResult {
    let data = sweep(quick);
    let ours: Vec<(f64, f64)> = data
        .iter()
        .map(|&(s, ref p)| (s as f64, p.improvement))
        .collect();
    let at9 = ours.last().map(|&(_, v)| v).unwrap_or(0.0);
    ExperimentResult {
        id: "fig3a".into(),
        title: "Throughput improvement of sharding separation".into(),
        x_label: "shards".into(),
        y_label: "throughput improvement".into(),
        series: vec![Series::new("our sharding", ours)],
        notes: vec![
            "200 txs uniform over shards, 1 miner/shard, 1 block/min, W_E = one-shard instance"
                .into(),
            format!(
                "{at9:.2}x at 9 shards (paper: 7.2x); growth is near-linear in the shard count"
            ),
            "gap to the paper's absolute factor comes from the max-over-shards completion \
             (exponential PoW tails); the winner and the linear shape match"
                .into(),
        ],
    }
}

/// Fig. 3(b): empty blocks, Ethereum vs. sharding.
pub fn run_b(quick: bool) -> ExperimentResult {
    let data = sweep(quick);
    let sharded: Vec<(f64, f64)> = data
        .iter()
        .map(|&(s, ref p)| (s as f64, p.sharded_empties))
        .collect();
    let ethereum: Vec<(f64, f64)> = data
        .iter()
        .map(|&(s, ref p)| (s as f64, p.ethereum_empties))
        .collect();
    ExperimentResult {
        id: "fig3b".into(),
        title: "Empty blocks: Ethereum vs. balanced sharding".into(),
        x_label: "shards".into(),
        y_label: "empty blocks per shard".into(),
        series: vec![
            Series::new("Ethereum", ethereum),
            Series::new("our sharding", sharded),
        ],
        notes: vec![
            "balanced shards stay busy until the end, so sharding adds almost no empty blocks \
             (paper: 'no vital difference')"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_is_monotoneish_and_substantial() {
        let r = run_a(true);
        let pts = &r.series[0].points;
        assert_eq!(pts.len(), 9);
        assert!((pts[0].1 - 1.0).abs() < 0.35, "1 shard ≈ no improvement");
        let at9 = pts[8].1;
        assert!(at9 > 2.5, "9-shard improvement {at9:.2}");
        assert!(at9 > pts[2].1, "not growing");
    }

    #[test]
    fn empty_blocks_stay_small_for_balanced_shards() {
        let r = run_b(true);
        for s in &r.series {
            for &(x, y) in &s.points {
                assert!(y < 8.0, "{} at {x} shards: {y} empties", s.name);
            }
        }
    }
}
