//! The evaluation harness: regenerates every table and figure of the
//! paper's Sec. VI.
//!
//! Each experiment in [`experiments`] returns an [`report::ExperimentResult`]
//! — named series of `(x, y)` points plus headline notes — which the
//! `experiments` binary renders as a text table and, on request, as JSON.
//! The per-experiment parameters mirror the paper's (transaction counts,
//! block rates, shard counts, repeat counts); every deviation and
//! calibration is listed in the experiment's `notes` and in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod report;

pub use report::{ExperimentResult, Series};
