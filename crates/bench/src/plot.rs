//! SVG rendering of experiment results — turns the `results/*.json` files
//! into figures comparable side-by-side with the paper's.
//!
//! Dependency-free: a small hand-rolled SVG writer with linear axes, tick
//! labels, per-series polylines + markers and a legend. Log-scale y is
//! available for the corruption-probability plots.

use crate::report::ExperimentResult;
#[cfg(test)]
use crate::report::Series;
use std::fmt::Write as _;

/// Canvas geometry.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 56.0;

/// Series palette (colourblind-safe-ish).
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// Plot options.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlotOptions {
    /// Log₁₀ y-axis (corruption probabilities).
    pub log_y: bool,
}

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm <= 1.0 {
            1.0
        } else if norm <= 2.0 {
            2.0
        } else if norm <= 5.0 {
            5.0
        } else {
            10.0
        };
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64, log: bool) -> String {
    if log {
        return format!("1e{}", v.round() as i64);
    }
    if v == 0.0 {
        return "0".into();
    }
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders one experiment as a standalone SVG document.
pub fn render_svg(result: &ExperimentResult, options: PlotOptions) -> String {
    let transform = |y: f64| -> Option<f64> {
        if options.log_y {
            if y > 0.0 {
                Some(y.log10())
            } else {
                None
            }
        } else {
            Some(y)
        }
    };

    // Data bounds over all series.
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in &result.series {
        for &(x, y) in &s.points {
            xs.push(x);
            if let Some(t) = transform(y) {
                ys.push(t);
            }
        }
    }
    let (x_lo, x_hi) = bounds(&xs);
    let (mut y_lo, mut y_hi) = bounds(&ys);
    if !options.log_y {
        y_lo = y_lo.min(0.0);
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo).max(1e-12) * plot_w;
    let py = |y: f64| MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;

    let mut out = String::with_capacity(8 * 1024);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Title.
    let _ = writeln!(
        out,
        r#"<text x="{:.0}" y="24" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
        WIDTH / 2.0,
        escape(&result.title)
    );

    // Axes.
    let x0 = MARGIN_L;
    let y0 = MARGIN_T + plot_h;
    let _ = writeln!(
        out,
        r#"<line x1="{x0}" y1="{y0}" x2="{:.1}" y2="{y0}" stroke="black"/>"#,
        MARGIN_L + plot_w
    );
    let _ = writeln!(
        out,
        r#"<line x1="{x0}" y1="{MARGIN_T}" x2="{x0}" y2="{y0}" stroke="black"/>"#
    );

    // Ticks + gridlines.
    for t in nice_ticks(x_lo, x_hi, 6) {
        let x = px(t);
        let _ = writeln!(
            out,
            r#"<line x1="{x:.1}" y1="{y0}" x2="{x:.1}" y2="{:.1}" stroke="black"/>"#,
            y0 + 5.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            y0 + 20.0,
            fmt_tick(t, false)
        );
    }
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = py(t);
        let _ = writeln!(
            out,
            r#"<line x1="{:.1}" y1="{y:.1}" x2="{x0}" y2="{y:.1}" stroke="black"/>"#,
            x0 - 5.0
        );
        let _ = writeln!(
            out,
            r##"<line x1="{x0}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#e0e0e0"/>"##,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            x0 - 9.0,
            y + 4.0,
            fmt_tick(t, options.log_y)
        );
    }

    // Axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{:.0}" y="{:.0}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 14.0,
        escape(&result.x_label)
    );
    let _ = writeln!(
        out,
        r#"<text x="16" y="{:.0}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.0})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&if options.log_y {
            format!("{} (log)", result.y_label)
        } else {
            result.y_label.clone()
        })
    );

    // Series.
    for (i, s) in result.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .filter_map(|&(x, y)| transform(y).map(|t| (px(x), py(t))))
            .collect();
        if pts.len() > 1 {
            let path: Vec<String> = pts.iter().map(|&(x, y)| format!("{x:.1},{y:.1}")).collect();
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
        }
        for &(x, y) in &pts {
            let _ = writeln!(
                out,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{color}"/>"#
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 6.0 + i as f64 * 16.0;
        let lx = MARGIN_L + plot_w - 180.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            escape(&s.name)
        );
    }

    let _ = writeln!(out, "</svg>");
    out
}

fn bounds(vals: &[f64]) -> (f64, f64) {
    let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() && hi.is_finite() {
        (lo, hi)
    } else {
        (0.0, 1.0)
    }
}

/// Picks sensible options per experiment id.
pub fn options_for(id: &str) -> PlotOptions {
    PlotOptions {
        log_y: id == "sec4d",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: "figX".into(),
            title: "improvement <vs> baseline".into(),
            x_label: "shards".into(),
            y_label: "improvement".into(),
            series: vec![
                Series::new(
                    "ours",
                    (1..=9).map(|i| (i as f64, i as f64 * 0.8)).collect(),
                ),
                Series::new("paper", vec![(1.0, 1.0), (9.0, 7.2)]),
            ],
            notes: vec![],
        }
    }

    #[test]
    fn renders_valid_looking_svg() {
        let svg = render_svg(&sample(), PlotOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.matches("<circle").count() >= 11);
        assert!(svg.contains("ours"));
        // XML-escaped title.
        assert!(svg.contains("&lt;vs&gt;"));
        assert!(!svg.contains("<vs>"));
    }

    #[test]
    fn log_scale_drops_nonpositive_points_instead_of_panicking() {
        let mut r = sample();
        r.series[0].points.push((10.0, 0.0));
        let svg = render_svg(&r, PlotOptions { log_y: true });
        assert!(svg.contains("(log)"));
    }

    #[test]
    fn single_point_and_flat_series_render() {
        let r = ExperimentResult {
            id: "flat".into(),
            title: "flat".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("const", vec![(0.0, 2.0), (1.0, 2.0)])],
            notes: vec![],
        };
        let svg = render_svg(&r, PlotOptions::default());
        assert!(svg.contains("polyline"));
        let r2 = ExperimentResult {
            series: vec![Series::new("one", vec![(5.0, 5.0)])],
            ..r
        };
        let svg = render_svg(&r2, PlotOptions::default());
        assert!(svg.contains("circle"));
    }

    #[test]
    fn tick_generation_is_sane() {
        let t = nice_ticks(0.0, 9.0, 6);
        assert!(t.len() >= 4 && t.len() <= 12, "{t:?}");
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(nice_ticks(3.0, 3.0, 5), vec![3.0]);
    }

    #[test]
    fn per_id_options() {
        assert!(options_for("sec4d").log_y);
        assert!(!options_for("fig3a").log_y);
    }
}
