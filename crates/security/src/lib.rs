//! Security analysis of the sharding design (Sec. III-B and Sec. IV-D).
//!
//! Pure probability computations, no dependencies:
//!
//! * [`math`] — log-space gamma/binomial machinery stable up to shard sizes
//!   of 10⁵ and beyond.
//! * [`shard_safety`](mod@shard_safety) — Fig. 1(d): the probability that a randomly-filled
//!   shard stays below the corruption threshold, for 25 % / 33 %
//!   adversaries under PoW (corruption needs a strict in-shard majority).
//! * [`corruption`] — Eq. (3) (inter-shard merging corruption), Eq. (4)
//!   (binomially distributed fees), Eq. (5) (per-transaction corruption)
//!   and Eq. (6) (intra-shard selection corruption), including the two
//!   headline numbers of Sec. IV-D (≈8·10⁻⁶ and ≈7·10⁻⁷ for a 25 %
//!   adversary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corruption;
pub mod math;
pub mod montecarlo;
pub mod shard_safety;

pub use corruption::{
    fee_pmf, inter_shard_corruption, inter_shard_corruption_for_shard, selection_corruption,
    tx_corruption_probability,
};
pub use shard_safety::{shard_safety, shard_safety_curve, CorruptionThreshold};
