//! Log-space combinatorics: `ln Γ`, `ln C(n,k)`, binomial pmf/cdf/tail.
//!
//! Everything is computed in log space so that shard sizes of thousands of
//! miners (the Fig. 5 scale) do not overflow. `ln Γ` uses the Lanczos
//! approximation (g = 7, 9 coefficients), accurate to ~15 significant
//! digits over the range we use.

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; negative infinity when `k > n`.
pub fn ln_binomial_coeff(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial pmf `P(X = k)` for `X ~ Bin(n, p)`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = ln_binomial_coeff(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_p.exp()
}

/// Binomial cdf `P(X ≤ k)`.
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> f64 {
    if k >= n {
        return 1.0;
    }
    // Sum the smaller side for accuracy.
    if (k as f64) < n as f64 * p {
        (0..=k).map(|i| binomial_pmf(n, i, p)).sum::<f64>().min(1.0)
    } else {
        (1.0 - binomial_tail(n, k + 1, p)).clamp(0.0, 1.0)
    }
}

/// Binomial upper tail `P(X ≥ k)`.
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum::<f64>().min(1.0)
}

/// The geometric series `Σ_{k=0}^{l} f^k`, with `l = None` meaning `l → ∞`
/// (requires `f < 1`). This is the "leader controlled for `l` consecutive
/// rounds" factor in Eqs. (3) and (6).
pub fn geometric_sum(f: f64, l: Option<u64>) -> f64 {
    assert!((0.0..=1.0).contains(&f));
    match l {
        Some(l) => {
            if (f - 1.0).abs() < 1e-15 {
                (l + 1) as f64
            } else {
                (1.0 - f.powi(l as i32 + 1)) / (1.0 - f)
            }
        }
        None => {
            assert!(f < 1.0, "infinite geometric sum diverges at f = 1");
            1.0 / (1.0 - f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn factorials_match_direct_computation() {
        let mut direct = 0.0f64;
        for n in 1..=170u64 {
            direct += (n as f64).ln();
            assert!(close(ln_factorial(n), direct, 1e-10), "n={n}");
        }
        assert!(ln_factorial(0).abs() < 1e-12);
    }

    #[test]
    fn binomial_coefficients() {
        assert!(close(ln_binomial_coeff(5, 2), 10f64.ln(), 1e-12));
        assert!(close(ln_binomial_coeff(10, 5), 252f64.ln(), 1e-12));
        assert_eq!(ln_binomial_coeff(3, 4), f64::NEG_INFINITY);
        assert!(close(ln_binomial_coeff(1000, 500), 689.467, 0.001)); // ≈ ln(2^1000/√(500π))
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (100, 0.25), (1000, 0.33)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!(close(total, 1.0, 1e-9), "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_degenerate_p() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 1, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
    }

    #[test]
    fn cdf_and_tail_are_complementary() {
        let (n, p) = (60u64, 0.25);
        for k in 0..n {
            let cdf = binomial_cdf(n, k, p);
            let tail = binomial_tail(n, k + 1, p);
            assert!(close(cdf + tail, 1.0, 1e-9), "k={k}");
        }
        assert_eq!(binomial_cdf(10, 10, 0.5), 1.0);
        assert_eq!(binomial_tail(10, 0, 0.5), 1.0);
        assert_eq!(binomial_tail(10, 11, 0.5), 0.0);
    }

    #[test]
    fn cdf_known_value() {
        // P(Bin(4, 0.5) ≤ 1) = (1 + 4)/16.
        assert!(close(binomial_cdf(4, 1, 0.5), 5.0 / 16.0, 1e-12));
        // P(Bin(2, 0.25) ≤ 0) = 0.5625.
        assert!(close(binomial_cdf(2, 0, 0.25), 0.5625, 1e-12));
    }

    #[test]
    fn tail_decreases_with_k() {
        let (n, p) = (100u64, 0.25);
        let mut prev = 1.0;
        for k in 0..=n {
            let t = binomial_tail(n, k, p);
            assert!(t <= prev + 1e-12);
            prev = t;
        }
    }

    #[test]
    fn geometric_sums() {
        assert!(close(geometric_sum(0.25, None), 4.0 / 3.0, 1e-12));
        assert!(close(geometric_sum(0.5, Some(2)), 1.75, 1e-12));
        assert!(close(geometric_sum(0.0, None), 1.0, 1e-12));
        assert!(close(geometric_sum(1.0, Some(3)), 4.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn infinite_sum_at_one_panics() {
        geometric_sum(1.0, None);
    }

    #[test]
    fn large_n_is_finite_and_sane() {
        // Stability at Fig. 5 scale.
        let p = binomial_pmf(100_000, 25_000, 0.25);
        assert!(p.is_finite() && p > 0.0 && p < 1.0);
        let t = binomial_tail(10_000, 5_001, 0.25);
        assert!(t.is_finite() && (0.0..1e-100).contains(&t));
    }
}
