//! The Sec. IV-D corruption probabilities: Eqs. (3)–(6).
//!
//! Both attacks share a structure: the adversary must (a) win the leader
//! election for `l` consecutive rounds (factor `Σ_{k≤l} f^k`) and (b) land
//! enough malicious miners on the target (a binomial tail). The paper quotes
//! two headline values for a 25 % adversary with `l → ∞`: ≈8·10⁻⁶ for the
//! merging attack and ≈7·10⁻⁷ for the selection attack (with 200 total fee
//! units); the calibration reproducing them is asserted in the tests and
//! documented in EXPERIMENTS.md.

use crate::math::{binomial_pmf, binomial_tail, geometric_sum};
use crate::shard_safety::{shard_safety, CorruptionThreshold};

/// Eq. (3): probability the inter-shard merging process is corrupted.
///
/// `Σ_{k=0}^{l} f^k · (1 − P_s)` where `f` is the adversary's computation
/// fraction, `P_s` the single-shard safety of Sec. III-B, and `l` the
/// consecutive leader-control rounds (`None` = `l → ∞`).
pub fn inter_shard_corruption(f: f64, p_s: f64, l: Option<u64>) -> f64 {
    assert!((0.0..=1.0).contains(&f));
    assert!((0.0..=1.0).contains(&p_s));
    geometric_sum(f, l) * (1.0 - p_s)
}

/// Convenience form of Eq. (3) that derives `P_s` from a shard of `n`
/// miners under the majority threshold.
pub fn inter_shard_corruption_for_shard(f: f64, n: u64, l: Option<u64>) -> f64 {
    inter_shard_corruption(f, shard_safety(n, f, CorruptionThreshold::Majority), l)
}

/// Eq. (4): probability that a transaction carries `t` coins of fee when
/// fees follow `Bin(N, ½)` over `N` total fee units:
/// `P_t = C(N, t) · (½)^N`.
pub fn fee_pmf(total_fees: u64, t: u64) -> f64 {
    binomial_pmf(total_fees, t, 0.5)
}

/// Eq. (5): probability a single transaction is corrupted when `n` miners
/// validate it: `P_i = P(c > ⌊n/2⌋)` with `c ~ Bin(n, f)`.
pub fn tx_corruption_probability(n: u64, f: f64) -> f64 {
    if n == 0 {
        // No validators at all — nothing to corrupt (the tx cannot confirm).
        return 0.0;
    }
    binomial_tail(n, n / 2 + 1, f)
}

/// Eq. (6): probability the intra-shard selection process is corrupted:
/// `Σ_{k=0}^{l} f^k · Σ_{t=1}^{N} P_i(n(t)) · P_t`.
///
/// `miners_on` maps a fee value `t` to the number of miners the selection
/// equilibrium puts on a transaction with that fee (higher-fee transactions
/// attract more miners, which is what makes them *harder* to corrupt).
pub fn selection_corruption(
    f: f64,
    total_fees: u64,
    l: Option<u64>,
    miners_on: impl Fn(u64) -> u64,
) -> f64 {
    assert!((0.0..=1.0).contains(&f));
    let per_tx: f64 = (1..=total_fees)
        .map(|t| tx_corruption_probability(miners_on(t), f) * fee_pmf(total_fees, t))
        .sum();
    geometric_sum(f, l) * per_tx
}

/// The shard size at which Eq. (3) yields the paper's quoted ≈8·10⁻⁶ for a
/// 25 % adversary with `l → ∞` (calibration constant; see EXPERIMENTS.md).
pub const PAPER_EQ3_SHARD_SIZE: u64 = 62;

/// The per-transaction validator count at which Eq. (6) yields the paper's
/// quoted ≈7·10⁻⁷ for a 25 % adversary and 200 total fee units.
pub const PAPER_EQ6_VALIDATORS: u64 = 78;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_reduces_to_geometric_times_failure() {
        let v = inter_shard_corruption(0.25, 0.999, None);
        assert!((v - (4.0 / 3.0) * 0.001).abs() < 1e-12);
        // l = 0 means the adversary gets exactly one try (f^0 = 1).
        let one = inter_shard_corruption(0.25, 0.999, Some(0));
        assert!((one - 0.001).abs() < 1e-12);
    }

    #[test]
    fn eq3_headline_number_order_of_magnitude() {
        // Sec. IV-D: "given a 25%-adversary, the failure probability of our
        // inter-shard merging algorithm is 8 · 10⁻⁶."
        let v = inter_shard_corruption_for_shard(0.25, PAPER_EQ3_SHARD_SIZE, None);
        assert!(
            (1e-6..1e-5).contains(&v),
            "corruption {v:.3e} not in the paper's 8e-6 decade"
        );
    }

    #[test]
    fn eq3_grows_with_f() {
        let lo = inter_shard_corruption_for_shard(0.20, 60, None);
        let hi = inter_shard_corruption_for_shard(0.30, 60, None);
        assert!(hi > lo);
    }

    #[test]
    fn eq4_is_a_pmf() {
        let n = 200;
        let total: f64 = (0..=n).map(|t| fee_pmf(n, t)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mode at N/2.
        assert!(fee_pmf(n, 100) > fee_pmf(n, 80));
        assert!(fee_pmf(n, 100) > fee_pmf(n, 120));
    }

    #[test]
    fn eq5_basic_properties() {
        // One miner: corrupted iff that miner is malicious (> 0 of 1).
        assert!((tx_corruption_probability(1, 0.25) - 0.25).abs() < 1e-12);
        // Three miners: need ≥ 2 malicious.
        let p = 3.0 * 0.25f64.powi(2) * 0.75 + 0.25f64.powi(3);
        assert!((tx_corruption_probability(3, 0.25) - p).abs() < 1e-12);
        // More validators, harder to corrupt (f < ½).
        assert!(tx_corruption_probability(50, 0.25) < tx_corruption_probability(10, 0.25));
        assert_eq!(tx_corruption_probability(0, 0.25), 0.0);
    }

    #[test]
    fn eq6_headline_number_order_of_magnitude() {
        // Sec. IV-D: "with a 25%-adversary and 200 transaction fees in
        // total, the corruption probability is 7 · 10⁻⁷."
        let v = selection_corruption(0.25, 200, None, |_| PAPER_EQ6_VALIDATORS);
        assert!(
            (1e-7..1e-6).contains(&v),
            "corruption {v:.3e} not in the paper's 7e-7 decade"
        );
    }

    #[test]
    fn eq6_fee_weighted_validators_help() {
        // If miners concentrate on high-fee transactions proportionally to
        // the fee, high-fee (= likely) transactions are well defended and
        // total corruption is lower than a flat small assignment.
        let flat = selection_corruption(0.25, 200, None, |_| 20);
        let weighted = selection_corruption(0.25, 200, None, |t| 20 + t / 2);
        assert!(weighted < flat);
    }

    #[test]
    fn eq6_zero_adversary_is_safe() {
        assert_eq!(selection_corruption(0.0, 200, None, |_| 10), 0.0);
    }

    #[test]
    fn leader_rounds_increase_both_attacks() {
        let base = inter_shard_corruption(0.25, 0.9999, Some(0));
        let more = inter_shard_corruption(0.25, 0.9999, Some(5));
        let inf = inter_shard_corruption(0.25, 0.9999, None);
        assert!(base < more && more < inf);
    }
}
