//! Shard safety under random miner assignment (Sec. III-B, Fig. 1(d)).
//!
//! Miner separation assigns each miner to a shard via verifiable
//! randomness, so with an adversary controlling fraction `f` of the
//! (effectively infinite, Sec. IV-D) pool, the number of malicious miners
//! landing in a shard of `n` is `Bin(n, f)`. The shard is *safe* while the
//! malicious count stays at or below the corruption threshold.

use crate::math::binomial_cdf;

/// How many in-shard adversaries it takes to corrupt a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionThreshold {
    /// Corruption requires a strict majority (> ½) — the PoW setting the
    /// paper evaluates ("Under the PoW consensus algorithm", Sec. III-B):
    /// an in-shard fork needs majority hash power.
    Majority,
    /// Corruption requires more than a third (> ⅓) — the BFT-style bound,
    /// included for comparison with BFT-sharded systems (Omniledger etc.).
    OneThird,
}

impl CorruptionThreshold {
    /// The largest malicious count that is still safe in a shard of `n`.
    pub fn max_safe(&self, n: u64) -> u64 {
        match self {
            CorruptionThreshold::Majority => n / 2,
            CorruptionThreshold::OneThird => n / 3,
        }
    }
}

/// Probability that a shard of `n` miners drawn against adversary fraction
/// `f` is safe: `P(Bin(n, f) ≤ threshold)`.
pub fn shard_safety(n: u64, f: f64, threshold: CorruptionThreshold) -> f64 {
    assert!(n > 0, "a shard needs at least one miner");
    assert!((0.0..=1.0).contains(&f));
    binomial_cdf(n, threshold.max_safe(n), f)
}

/// The Fig. 1(d) curve: safety for every shard size in `sizes`.
pub fn shard_safety_curve(
    sizes: impl IntoIterator<Item = u64>,
    f: f64,
    threshold: CorruptionThreshold,
) -> Vec<(u64, f64)> {
    sizes
        .into_iter()
        .map(|n| (n, shard_safety(n, f, threshold)))
        .collect()
}

/// Smallest shard size whose safety is at least `target` — the inverse
/// question operators actually ask ("how many miners do I need?").
pub fn min_shard_size_for_safety(
    f: f64,
    threshold: CorruptionThreshold,
    target: f64,
    max_n: u64,
) -> Option<u64> {
    // Safety is not strictly monotone in n (parity effects), so scan.
    (1..=max_n).find(|&n| shard_safety(n, f, threshold) >= target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds() {
        assert_eq!(CorruptionThreshold::Majority.max_safe(30), 15);
        assert_eq!(CorruptionThreshold::Majority.max_safe(31), 15);
        assert_eq!(CorruptionThreshold::OneThird.max_safe(30), 10);
        assert_eq!(CorruptionThreshold::OneThird.max_safe(31), 10);
    }

    #[test]
    fn fig1d_30_miner_shard_is_almost_never_corrupted() {
        // The paper's caption: "Given a 33% attack in a shard with 30
        // miners, the probability to corrupt the system is almost 0."
        let s = shard_safety(30, 0.33, CorruptionThreshold::Majority);
        assert!(s > 0.97, "safety {s}");
        let s25 = shard_safety(30, 0.25, CorruptionThreshold::Majority);
        assert!(s25 > 0.999, "safety {s25}");
    }

    #[test]
    fn more_adversary_less_safety() {
        for n in [10u64, 30, 60, 100] {
            let s25 = shard_safety(n, 0.25, CorruptionThreshold::Majority);
            let s33 = shard_safety(n, 0.33, CorruptionThreshold::Majority);
            assert!(s25 > s33, "n={n}: {s25} vs {s33}");
        }
    }

    #[test]
    fn safety_approaches_one_with_size_when_f_below_threshold() {
        let small = shard_safety(10, 0.33, CorruptionThreshold::Majority);
        let large = shard_safety(200, 0.33, CorruptionThreshold::Majority);
        assert!(large > small);
        assert!(large > 0.9999);
    }

    #[test]
    fn safety_degrades_with_size_when_f_above_threshold() {
        // A 60% adversary corrupts big shards almost surely.
        let small = shard_safety(5, 0.6, CorruptionThreshold::Majority);
        let large = shard_safety(500, 0.6, CorruptionThreshold::Majority);
        assert!(small > large);
        assert!(large < 1e-3);
    }

    #[test]
    fn one_third_threshold_is_stricter() {
        for n in [12u64, 30, 90] {
            let maj = shard_safety(n, 0.25, CorruptionThreshold::Majority);
            let third = shard_safety(n, 0.25, CorruptionThreshold::OneThird);
            assert!(maj >= third, "n={n}");
        }
    }

    #[test]
    fn degenerate_adversaries() {
        assert_eq!(shard_safety(50, 0.0, CorruptionThreshold::Majority), 1.0);
        let all_bad = shard_safety(50, 1.0, CorruptionThreshold::Majority);
        assert!(all_bad < 1e-12);
    }

    #[test]
    fn curve_has_one_point_per_size() {
        let curve = shard_safety_curve(
            (20..=100).step_by(20).map(|n| n as u64),
            0.25,
            CorruptionThreshold::Majority,
        );
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0].0, 20);
        assert!(curve.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn min_size_for_safety() {
        let n = min_shard_size_for_safety(0.25, CorruptionThreshold::Majority, 0.999, 500)
            .expect("reachable");
        assert!(n > 1);
        assert!(shard_safety(n, 0.25, CorruptionThreshold::Majority) >= 0.999);
        // Unreachable target returns None.
        assert_eq!(
            min_shard_size_for_safety(0.6, CorruptionThreshold::Majority, 0.999, 200),
            None
        );
    }
}
