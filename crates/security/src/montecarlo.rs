//! Monte Carlo validation of the analytic security bounds.
//!
//! The closed forms in [`crate::shard_safety`](mod@crate::shard_safety) and [`crate::corruption`]
//! rest on modelling assumptions (binomial malicious counts, independent
//! leader rounds). This module *simulates* the underlying processes with a
//! seeded RNG and estimates the same probabilities empirically, so tests
//! can assert the analysis matches the mechanism it claims to describe —
//! the standard sanity check a security evaluation ships with.
//!
//! Kept dependency-free: a small xorshift generator suffices for these
//! estimates and keeps this crate std-only.

use crate::shard_safety::CorruptionThreshold;

/// A tiny deterministic RNG (xorshift64*), good enough for Monte Carlo
/// probability estimates.
#[derive(Clone, Debug)]
pub struct McRng(u64);

impl McRng {
    /// Seeded constructor (seed 0 is remapped — xorshift needs nonzero).
    pub fn new(seed: u64) -> Self {
        McRng(seed.max(1))
    }

    /// Next u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Empirical shard safety: sample `trials` shards of `n` miners, each
/// miner malicious with probability `f` (the infinite-pool model of
/// Sec. IV-D), and report the fraction that stay at or below the
/// threshold.
pub fn empirical_shard_safety(
    n: u64,
    f: f64,
    threshold: CorruptionThreshold,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(n > 0 && trials > 0);
    let mut rng = McRng::new(seed);
    let max_safe = threshold.max_safe(n);
    let mut safe = 0u32;
    for _ in 0..trials {
        let malicious = (0..n).filter(|_| rng.coin(f)).count() as u64;
        if malicious <= max_safe {
            safe += 1;
        }
    }
    safe as f64 / trials as f64
}

/// Empirical per-transaction corruption (Eq. 5): `n` validators, corrupted
/// when strictly more than half are malicious.
pub fn empirical_tx_corruption(n: u64, f: f64, trials: u32, seed: u64) -> f64 {
    assert!(trials > 0);
    if n == 0 {
        return 0.0;
    }
    let mut rng = McRng::new(seed);
    let mut corrupted = 0u32;
    for _ in 0..trials {
        let malicious = (0..n).filter(|_| rng.coin(f)).count() as u64;
        if malicious > n / 2 {
            corrupted += 1;
        }
    }
    corrupted as f64 / trials as f64
}

/// Empirical leader-control factor: expected number of *initial
/// consecutive* leader elections won by an adversary with fraction `f`
/// (plus the free first round) — the `Σ f^k` factor of Eqs. (3)/(6).
pub fn empirical_leader_factor(f: f64, max_rounds: u32, trials: u32, seed: u64) -> f64 {
    assert!(trials > 0);
    let mut rng = McRng::new(seed);
    let mut total = 0u64;
    for _ in 0..trials {
        let mut streak = 1u64; // k = 0 term
        for _ in 0..max_rounds {
            if rng.coin(f) {
                streak += 1;
            } else {
                break;
            }
        }
        total += streak;
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption::tx_corruption_probability;
    use crate::math::geometric_sum;
    use crate::shard_safety::shard_safety;

    const TRIALS: u32 = 60_000;

    #[test]
    fn rng_is_deterministic_and_uniformish() {
        let mut a = McRng::new(42);
        let mut b = McRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = McRng::new(7);
        let mean: f64 = (0..20_000).map(|_| r.unit()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shard_safety_matches_analytics() {
        for &(n, f) in &[(10u64, 0.25), (30, 0.33), (60, 0.25)] {
            let analytic = shard_safety(n, f, CorruptionThreshold::Majority);
            let empirical = empirical_shard_safety(n, f, CorruptionThreshold::Majority, TRIALS, 1);
            assert!(
                (analytic - empirical).abs() < 0.01,
                "n={n} f={f}: analytic {analytic:.4} vs empirical {empirical:.4}"
            );
        }
    }

    #[test]
    fn one_third_threshold_matches_too() {
        let analytic = shard_safety(30, 0.25, CorruptionThreshold::OneThird);
        let empirical = empirical_shard_safety(30, 0.25, CorruptionThreshold::OneThird, TRIALS, 2);
        assert!((analytic - empirical).abs() < 0.01);
    }

    #[test]
    fn tx_corruption_matches_analytics() {
        for &(n, f) in &[(1u64, 0.25), (5, 0.25), (15, 0.33)] {
            let analytic = tx_corruption_probability(n, f);
            let empirical = empirical_tx_corruption(n, f, TRIALS, 3);
            assert!(
                (analytic - empirical).abs() < 0.01,
                "n={n} f={f}: {analytic:.4} vs {empirical:.4}"
            );
        }
        assert_eq!(empirical_tx_corruption(0, 0.25, 100, 4), 0.0);
    }

    #[test]
    fn leader_factor_matches_geometric_sum() {
        for &f in &[0.1, 0.25, 0.33] {
            let analytic = geometric_sum(f, None);
            let empirical = empirical_leader_factor(f, 200, TRIALS, 5);
            assert!(
                (analytic - empirical).abs() < 0.02,
                "f={f}: {analytic:.4} vs {empirical:.4}"
            );
        }
    }

    #[test]
    fn truncated_leader_factor_matches_finite_sum() {
        let f = 0.5;
        let analytic = geometric_sum(f, Some(3));
        let empirical = empirical_leader_factor(f, 3, TRIALS, 6);
        assert!((analytic - empirical).abs() < 0.02);
    }
}
