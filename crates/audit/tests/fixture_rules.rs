//! Every rule id has a pass and a fail fixture under `tests/fixtures/`.
//!
//! The fail fixture must produce at least one finding of exactly that rule
//! with a real line number; the pass fixture must produce none. A further
//! end-to-end test builds a miniature workspace in the cargo temp dir and
//! checks the acceptance criterion from the issue: seeding a `thread_rng()`
//! call into a protocol crate fails the audit with a `file:line` diagnostic
//! naming the rule.

use cshard_audit::lexer::lex;
use cshard_audit::rules::{apply_token_rule, TOKEN_RULES};
use cshard_audit::{scan_workspace, uncovered_crates, Policy};
use std::fs;
use std::path::Path;

fn fixture(kind: &str, name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn policy_for(rule: &str) -> Policy {
    let text =
        format!("[audit]\ncrates = [\"core\"]\n[rules.{rule}]\ndescription = \"fixture policy\"\n");
    Policy::parse(&text).expect("fixture policy parses")
}

#[test]
fn every_token_rule_has_a_failing_and_passing_fixture() {
    for rule in TOKEN_RULES {
        let file = format!("{}.rs", rule.to_lowercase());
        let policy = policy_for(rule);
        let rp = &policy.rules[rule];

        let fail = apply_token_rule(rule, rp, &file, &lex(&fixture("fail", &file)));
        assert!(
            !fail.is_empty(),
            "{rule}: fail fixture produced no findings"
        );
        for f in &fail {
            assert_eq!(f.rule, rule);
            assert!(f.line > 0, "{rule}: finding without a line: {f}");
            // The diagnostic format is `file:line: RULE message`.
            let rendered = f.to_string();
            assert!(
                rendered.starts_with(&format!("{}:{}: {}", file, f.line, rule)),
                "{rule}: unexpected diagnostic format: {rendered}"
            );
        }

        let pass = apply_token_rule(rule, rp, &file, &lex(&fixture("pass", &file)));
        assert!(pass.is_empty(), "{rule}: pass fixture flagged: {pass:?}");
    }
}

/// Builds `<tmp>/<name>/crates/core/src/lib.rs` with the given source and
/// returns the workspace root.
fn mini_workspace(name: &str, lib_rs: &str) -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).expect("mkdir fixture workspace");
    fs::write(src.join("lib.rs"), lib_rs).expect("write fixture lib.rs");
    root
}

#[test]
fn seeded_thread_rng_in_core_fails_with_file_and_line() {
    let root = mini_workspace(
        "audit-nd002",
        "//! doc\npub fn roll() -> u64 {\n    let mut r = rand::thread_rng();\n    0\n}\n",
    );
    let policy = Policy::parse(
        "[audit]\ncrates = [\"core\"]\n[rules.ND002]\ndescription = \"no ambient entropy\"\n",
    )
    .expect("parses");
    let report = scan_workspace(&root, &policy);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "ND002");
    assert_eq!(f.path, "crates/core/src/lib.rs");
    assert_eq!(f.line, 3, "thread_rng call is on line 3");
    assert!(f.to_string().contains("crates/core/src/lib.rs:3: ND002"));
}

#[test]
fn ah001_checks_crate_headers_end_to_end() {
    let policy_text = "[audit]\ncrates = [\"core\"]\n[rules.AH001]\n\
                       description = \"headers\"\n\
                       required = [\"#![warn(missing_docs)]\", \"#![forbid(unsafe_code)]\"]\n";
    let policy = Policy::parse(policy_text).expect("parses");

    let bad = mini_workspace("audit-ah001-fail", &fixture("fail", "ah001_lib.rs"));
    let report = scan_workspace(&bad, &policy);
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == "AH001"));
    assert!(report.findings[0]
        .to_string()
        .contains("crates/core/src/lib.rs"));

    let good = mini_workspace("audit-ah001-pass", &fixture("pass", "ah001_lib.rs"));
    let report = scan_workspace(&good, &policy);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn allowlisted_file_is_exempt() {
    let root = mini_workspace(
        "audit-allow",
        "//! doc\nuse std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n",
    );
    let strict = Policy::parse(
        "[audit]\ncrates = [\"core\"]\n[rules.ND001]\ndescription = \"no wall clock\"\n",
    )
    .expect("parses");
    assert!(!scan_workspace(&root, &strict).findings.is_empty());

    let lenient = Policy::parse(
        "[audit]\ncrates = [\"core\"]\n[rules.ND001]\ndescription = \"no wall clock\"\n\
         allow = [\"crates/core/src/lib.rs\"]  # fixture: sanctioned wall-clock site\n",
    )
    .expect("parses");
    assert!(scan_workspace(&root, &lenient).findings.is_empty());
}

#[test]
fn policy_parse_error_is_a_diagnostic_not_a_panic() {
    let err = Policy::parse("[audit]\ncrates = [\"core\"]\n[rules.X]\nnot a toml line\n")
        .expect_err("malformed policy must be rejected");
    assert_eq!(err.line, 4);
    let rendered = err.to_string();
    assert!(rendered.starts_with("policy.toml:4:"), "{rendered}");
}

/// A workspace crate (a `crates/<name>/Cargo.toml`) named by neither
/// `[audit] crates` nor `[audit] exempt` is a coverage gap: the scan must
/// report it so the binary can refuse to run (exit 2).
#[test]
fn uncovered_crate_with_manifest_is_detected_and_exempt_clears_it() {
    // The tmp workspace persists across runs; drop the manifest this test
    // writes below so the no-manifest assertion holds on reruns.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("audit-coverage");
    let _ = fs::remove_dir_all(&root);
    let root = mini_workspace("audit-coverage", "//! covered crate\n");
    // `core` has a src/ but no manifest yet — not a crate, not a gap.
    let policy = Policy::parse("[audit]\ncrates = [\"other\"]\n").expect("parses");
    assert!(uncovered_crates(&root, &policy).is_empty());
    // Give it a manifest: now it is an uncovered workspace crate.
    fs::write(
        root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"core\"\n",
    )
    .expect("write manifest");
    assert_eq!(uncovered_crates(&root, &policy), vec!["core".to_string()]);
    // Listing it as scanned or exempt both clear the gap.
    let scanned = Policy::parse("[audit]\ncrates = [\"core\"]\n").expect("parses");
    assert!(uncovered_crates(&root, &scanned).is_empty());
    let exempt = Policy::parse("[audit]\ncrates = [\"other\"]\nexempt = [\"core\"] # fixture\n")
        .expect("parses");
    assert!(uncovered_crates(&root, &exempt).is_empty());
}

/// The real workspace policy must parse and keep covering the real crates —
/// a drifted `policy.toml` fails here before it fails in CI.
#[test]
fn workspace_policy_parses_and_names_existing_crates() {
    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let text = fs::read_to_string(ws_root.join("policy.toml")).expect("policy.toml exists");
    let policy = Policy::parse(&text).expect("workspace policy parses");
    for krate in &policy.crates {
        assert!(
            ws_root
                .join("crates")
                .join(krate)
                .join("src/lib.rs")
                .is_file(),
            "policy names missing crate `{krate}`"
        );
    }
    // Every token rule plus the header rule is configured.
    for rule in TOKEN_RULES {
        assert!(policy.rules.contains_key(rule), "missing [rules.{rule}]");
    }
    assert!(policy.rules.contains_key("AH001"), "missing [rules.AH001]");
    // The real workspace has no coverage gap: every crate is scanned or
    // exempt (with a reason) — the audit binary exits 2 otherwise.
    let gaps = uncovered_crates(ws_root, &policy);
    assert!(gaps.is_empty(), "uncovered workspace crates: {gaps:?}");
}
