// FD001 fail fixture: float equality against literals.
pub fn is_unit(p: f64) -> bool {
    p == 1.0
}

pub fn not_negative_half(p: f64) -> bool {
    p != -0.5
}
