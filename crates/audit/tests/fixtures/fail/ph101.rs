// PH101 fail fixture: an `unwrap` one hop below a pipeline-stage sink.
pub struct Stage;

impl PipelineStage for Stage {
    fn run(&mut self, ctx: u32) -> u32 {
        decode(ctx)
    }
}

fn decode(v: u32) -> u32 {
    checked(v).unwrap()
}

fn checked(v: u32) -> Option<u32> {
    v.checked_add(1)
}
