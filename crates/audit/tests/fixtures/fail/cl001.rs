// CL001 fail fixture: a lossy narrowing `as` cast below a sink.
pub struct Stage;

impl PipelineStage for Stage {
    fn run(&mut self, ctx: u64) -> u32 {
        shrink(ctx)
    }
}

fn shrink(v: u64) -> u32 {
    v as u32
}
