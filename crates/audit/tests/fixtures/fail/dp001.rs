// DP001 fail fixture: a live call to a deprecated workspace item.
#[deprecated(note = "use schedule_v2")]
pub fn schedule(v: u64) -> u64 {
    v
}

pub fn caller(v: u64) -> u64 {
    schedule(v)
}
