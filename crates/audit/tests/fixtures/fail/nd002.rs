// ND002 fail fixture: ambient entropy in protocol code.
pub fn roll() -> u64 {
    use rand::Rng;
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn reseed() -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::from_entropy()
}
