// ND003 fail fixture: iterating a hash container in protocol code.
use std::collections::{HashMap, HashSet};

pub struct Pool {
    txs: HashMap<u64, u64>,
}

impl Pool {
    pub fn total(&self) -> u64 {
        self.txs.values().sum()
    }
}

pub fn visit_all(seen: &HashSet<u64>) -> u64 {
    let mut acc = 0;
    for s in seen {
        acc += s;
    }
    acc
}
