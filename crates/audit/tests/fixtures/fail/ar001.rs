// AR001 fail fixture: bare arithmetic on a guarded time type.
pub fn deadline(now: SimTime, delay: SimTime) -> SimTime {
    now + delay
}

pub fn backdate(t: SimTime) -> SimTime {
    t - SimTime::from_secs(1)
}
