// PH001 fail fixture: panics in protocol code.
pub fn on_event(ev: Option<u32>) -> u32 {
    ev.unwrap()
}

pub fn lookup(v: &[u32]) -> u32 {
    *v.first().expect("non-empty")
}

pub fn reject(kind: u32) {
    match kind {
        0 => {}
        _ => unreachable!("driver never schedules this"),
    }
}
