// ND001 fail fixture: wall-clock reads in protocol code.
use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
