// ND101 fail fixture: a wall clock two hops below a protocol sink.
pub struct Driver;

impl ProtocolDriver for Driver {
    fn on_event(&mut self, ev: u64) -> u64 {
        helper(ev)
    }
}

fn helper(ev: u64) -> u64 {
    stamp().wrapping_add(ev)
}

fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}
