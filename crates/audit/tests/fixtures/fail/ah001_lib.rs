//! AH001 fail fixture: a crate root missing the required lint headers.

pub fn noop() {}
