// ND001 pass fixture: simulated time only; wall clocks confined to tests
// and string literals.
pub fn next_tick(now: u64, step: u64) -> u64 {
    now.saturating_add(step)
}

pub fn describe() -> &'static str {
    "drivers never read Instant or SystemTime"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
