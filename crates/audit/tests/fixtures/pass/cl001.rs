// CL001 pass fixture: narrowing goes through try_from; widening casts
// are not narrowing and stay legal.
pub struct Stage;

impl PipelineStage for Stage {
    fn run(&mut self, ctx: u64) -> u32 {
        shrink(ctx)
    }
}

fn shrink(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

fn widen(v: u32) -> u64 {
    v as u64
}
