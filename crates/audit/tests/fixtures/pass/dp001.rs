// DP001 pass fixture: the deprecated shim still exists but nothing
// calls it any more.
#[deprecated(note = "use schedule_v2")]
pub fn schedule(v: u64) -> u64 {
    schedule_v2(v)
}

pub fn schedule_v2(v: u64) -> u64 {
    v
}

pub fn caller(v: u64) -> u64 {
    schedule_v2(v)
}
