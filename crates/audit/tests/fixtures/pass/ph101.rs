// PH101 pass fixture: the sink path degrades gracefully; an `unwrap` in
// a fn no sink can reach stays legal (the rule is reachability-scoped).
pub struct Stage;

impl PipelineStage for Stage {
    fn run(&mut self, ctx: u32) -> u32 {
        decode(ctx)
    }
}

fn decode(v: u32) -> u32 {
    checked(v).unwrap_or(0)
}

fn checked(v: u32) -> Option<u32> {
    v.checked_add(1)
}

pub fn offline_tool(v: u32) -> u32 {
    checked(v).unwrap()
}
