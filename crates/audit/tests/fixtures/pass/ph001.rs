// PH001 pass fixture: typed errors on every path; tests may still unwrap.
#[derive(Debug)]
pub struct UnexpectedEvent;

pub fn on_event(ev: Option<u32>) -> Result<u32, UnexpectedEvent> {
    ev.ok_or(UnexpectedEvent)
}

pub fn lookup(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::on_event(Some(3)).unwrap(), 3);
    }
}
