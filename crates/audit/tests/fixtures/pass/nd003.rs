// ND003 pass fixture: ordered containers iterate deterministically, and
// hash containers used for membership only are fine.
use std::collections::{BTreeMap, HashSet};

pub struct Pool {
    txs: BTreeMap<u64, u64>,
}

impl Pool {
    pub fn total(&self) -> u64 {
        self.txs.values().sum()
    }
}

pub fn contains(seen: &HashSet<u64>, x: u64) -> bool {
    seen.contains(&x)
}
