// ND101 pass fixture: the sink path is clock-free; a wall clock in a fn
// no sink can reach stays legal (the rule is reachability-scoped).
pub struct Driver;

impl ProtocolDriver for Driver {
    fn on_event(&mut self, ev: u64) -> u64 {
        helper(ev)
    }
}

fn helper(ev: u64) -> u64 {
    ev.wrapping_add(1)
}

pub fn diagnostics_only() -> u64 {
    std::time::Instant::now().elapsed().as_secs()
}
