//! AH001 pass fixture: a crate root carrying the required lint headers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub fn noop() {}
