// FD001 pass fixture: integer equality and explicit tolerances.
pub fn is_five(x: u64) -> bool {
    x == 5
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
