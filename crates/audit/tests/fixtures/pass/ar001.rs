// AR001 pass fixture: guarded counters go through saturating/checked
// methods; arithmetic on unguarded names stays untouched.
pub fn deadline(now: SimTime, delay: SimTime) -> SimTime {
    now.saturating_add(delay)
}

pub fn span(a: u64, b: u64) -> u64 {
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_bare_arithmetic() {
        let t: SimTime = SimTime::from_secs(1);
        let _ = t + t;
    }
}
