// ND002 pass fixture: all randomness derives from explicit run seeds.
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub fn stream(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
