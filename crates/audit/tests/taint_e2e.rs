//! End-to-end coverage for the reachability-scoped rules (`ND101`,
//! `PH101`, `CL001`, `DP001`) over miniature workspaces, plus the
//! ambiguous-edge exit-2 contract of the `cshard-audit` binary.
//!
//! Each reachability rule has a pass and a fail fixture under
//! `tests/fixtures/`: the fail fixture plants a source N hops below a
//! sink root and must yield exactly one finding with a full
//! source→…→sink call chain; the pass fixture keeps the sink path clean
//! while leaving the same source in a fn no sink can reach — proving
//! the rules are reachability-scoped, not whole-file lints.

use cshard_audit::{scan_workspace, Policy, ScanReport};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(kind: &str, name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Builds `<tmp>/<name>/crates/core/src/lib.rs` and returns the root.
fn mini_workspace(name: &str, lib_rs: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).expect("mkdir fixture workspace");
    fs::write(src.join("lib.rs"), lib_rs).expect("write fixture lib.rs");
    root
}

/// A policy enabling one reachability rule over one sink spec.
fn reach_policy(rule: &str, sink: &str) -> Policy {
    Policy::parse(&format!(
        "[audit]\ncrates = [\"core\"]\n\
         [callgraph]\nsinks = [\"{sink}\"]\n\
         [rules.{rule}]\ndescription = \"fixture policy\"\n"
    ))
    .expect("fixture policy parses")
}

fn scan_fixture(test: &str, kind: &str, file: &str, rule: &str, sink: &str) -> ScanReport {
    let root = mini_workspace(test, &fixture(kind, file));
    let report = scan_workspace(&root, &reach_policy(rule, sink));
    assert!(
        report.ambiguous.is_empty(),
        "{test}: unexpected ambiguity: {:?}",
        report.ambiguous
    );
    report
}

#[test]
fn nd101_two_hop_wall_clock_reports_the_full_chain() {
    let report = scan_fixture(
        "taint-nd101-fail",
        "fail",
        "nd101.rs",
        "ND101",
        "ProtocolDriver::on_event",
    );
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "ND101");
    assert_eq!(f.path, "crates/core/src/lib.rs");
    assert_eq!(f.line, 15, "the Instant::now() call is on line 15");
    // Chain: sink root, then one hop per call down to the source fn.
    assert_eq!(f.chain.len(), 3, "{:?}", f.chain);
    assert!(f.chain[0].contains("on_event"), "{:?}", f.chain);
    assert!(f.chain[1].contains("helper"), "{:?}", f.chain);
    assert!(f.chain[2].contains("stamp"), "{:?}", f.chain);
    // Every hop carries a `file:line` location and renders indented.
    let rendered = f.to_string();
    assert_eq!(rendered.matches("-> ").count(), 2, "{rendered}");
    assert_eq!(
        rendered.matches("crates/core/src/lib.rs:").count(),
        4,
        "head + 3 chain locations: {rendered}"
    );
}

#[test]
fn nd101_ignores_wall_clocks_no_sink_can_reach() {
    let report = scan_fixture(
        "taint-nd101-pass",
        "pass",
        "nd101.rs",
        "ND101",
        "ProtocolDriver::on_event",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.sink_roots, 1);
}

#[test]
fn ph101_flags_unwrap_below_a_stage_sink() {
    let report = scan_fixture(
        "taint-ph101-fail",
        "fail",
        "ph101.rs",
        "PH101",
        "PipelineStage::run",
    );
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "PH101");
    assert!(f.chain.len() >= 2, "{:?}", f.chain);
}

#[test]
fn ph101_ignores_unwrap_outside_the_sink_cone() {
    let report = scan_fixture(
        "taint-ph101-pass",
        "pass",
        "ph101.rs",
        "PH101",
        "PipelineStage::run",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn cl001_flags_narrowing_cast_below_a_sink() {
    let report = scan_fixture(
        "taint-cl001-fail",
        "fail",
        "cl001.rs",
        "CL001",
        "PipelineStage::run",
    );
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "CL001");
}

#[test]
fn cl001_accepts_try_from_and_widening_casts() {
    let report = scan_fixture(
        "taint-cl001-pass",
        "pass",
        "cl001.rs",
        "CL001",
        "PipelineStage::run",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn dp001_flags_calls_to_deprecated_items_everywhere() {
    // DP001 needs no sink: any resolved edge into a deprecated item counts.
    let root = mini_workspace("taint-dp001-fail", &fixture("fail", "dp001.rs"));
    let policy = Policy::parse(
        "[audit]\ncrates = [\"core\"]\n[rules.DP001]\ndescription = \"fixture policy\"\n",
    )
    .expect("parses");
    let report = scan_workspace(&root, &policy);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "DP001");
    assert!(f.message.contains("schedule"), "{f}");

    let root = mini_workspace("taint-dp001-pass", &fixture("pass", "dp001.rs"));
    let report = scan_workspace(&root, &policy);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

/// The acceptance-criterion shape: the sink impl lives in one file, the
/// helper and the wall-clock source in another — taint must propagate
/// through the cross-file call edge and the chain must span both files.
#[test]
fn two_hop_taint_propagates_across_files() {
    let root = mini_workspace(
        "taint-cross-file",
        "//! sink side\nmod util;\n\npub struct Driver;\n\n\
         impl ProtocolDriver for Driver {\n    fn on_event(&mut self, ev: u64) -> u64 {\n        util::helper(ev)\n    }\n}\n",
    );
    fs::write(
        root.join("crates/core/src/util.rs"),
        "//! helper side\npub fn helper(ev: u64) -> u64 {\n    stamp().wrapping_add(ev)\n}\n\n\
         fn stamp() -> u64 {\n    std::time::Instant::now().elapsed().as_secs()\n}\n",
    )
    .expect("write util.rs");
    let report = scan_workspace(&root, &reach_policy("ND101", "ProtocolDriver::on_event"));
    assert!(report.ambiguous.is_empty(), "{:?}", report.ambiguous);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.path, "crates/core/src/util.rs");
    assert_eq!(f.chain.len(), 3, "{:?}", f.chain);
    assert!(
        f.chain[0].contains("crates/core/src/lib.rs:"),
        "{:?}",
        f.chain
    );
    assert!(
        f.chain[1].contains("helper") && f.chain[1].contains("crates/core/src/lib.rs:"),
        "hop 1 is the cross-file call site: {:?}",
        f.chain
    );
    assert!(
        f.chain[2].contains("stamp") && f.chain[2].contains("crates/core/src/util.rs:"),
        "{:?}",
        f.chain
    );
}

/// An unresolvable call is a setup error: the binary must exit 2 with a
/// diagnostic naming the call site and the `[callgraph] resolve` override
/// syntax — and the suggested override must actually clear it.
#[test]
fn ambiguous_call_exits_2_until_a_resolve_override_settles_it() {
    let lib = "//! two same-name same-arity methods, untyped receiver\n\
               pub struct A;\npub struct B;\n\
               impl A {\n    pub fn poll(&self) -> u32 {\n        1\n    }\n}\n\
               impl B {\n    pub fn poll(&self) -> u32 {\n        2\n    }\n}\n\
               pub fn tick(a: &A) -> u32 {\n    a.poll()\n}\n";
    let root = mini_workspace("taint-ambiguous", lib);
    fs::write(root.join("policy.toml"), "[audit]\ncrates = [\"core\"]\n").expect("write policy");

    let out = Command::new(env!("CARGO_BIN_EXE_cshard-audit"))
        .args(["--root", root.to_str().expect("utf-8 tmp path")])
        .output()
        .expect("run cshard-audit");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ambiguous call `poll`"), "{stderr}");
    assert!(stderr.contains("crates/core/src/lib.rs:"), "{stderr}");
    assert!(
        stderr.contains("resolve = [\"poll/1 -> <id-suffix>|*|external\"]"),
        "hint must quote the override syntax: {stderr}"
    );

    // Taking the hint settles the run.
    fs::write(
        root.join("policy.toml"),
        "[audit]\ncrates = [\"core\"]\n[callgraph]\nresolve = [\"poll/1 -> *\"]\n",
    )
    .expect("write policy");
    let out = Command::new(env!("CARGO_BIN_EXE_cshard-audit"))
        .args(["--root", root.to_str().expect("utf-8 tmp path")])
        .output()
        .expect("run cshard-audit");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
