//! The `cshard-audit` binary: load `policy.toml`, scan, report, gate.
//!
//! Exit codes: `0` clean, `1` findings, `2` setup error (policy missing,
//! unparseable, or a workspace crate covered by neither `[audit] crates`
//! nor `[audit] exempt`). Run from anywhere inside the workspace
//! (`just audit`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cshard_audit::{scan_workspace, uncovered_crates, Policy};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: cshard-audit [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cshard-audit: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("cshard-audit: no policy.toml found here or in any parent directory");
            return ExitCode::from(2);
        }
    };
    let policy_path = root.join("policy.toml");
    let text = match std::fs::read_to_string(&policy_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cshard-audit: cannot read {}: {e}", policy_path.display());
            return ExitCode::from(2);
        }
    };
    let policy = match Policy::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            // The parse error already carries `policy.toml:<line>`.
            eprintln!("cshard-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let uncovered = uncovered_crates(&root, &policy);
    if !uncovered.is_empty() {
        for krate in &uncovered {
            eprintln!(
                "cshard-audit: crate `crates/{krate}` is in neither [audit] crates nor \
                 [audit] exempt — add it to policy.toml (scanned, or exempt with a reason)"
            );
        }
        return ExitCode::from(2);
    }
    let report = scan_workspace(&root, &policy);
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        println!(
            "cshard-audit: clean — {} files across {} crates",
            report.files_scanned,
            policy.crates.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "cshard-audit: {} finding(s) in {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `policy.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("policy.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
