//! The `cshard-audit` binary: load `policy.toml`, scan, report, gate.
//!
//! Exit codes: `0` clean, `1` findings or a baseline regression, `2`
//! setup error (policy missing, unparseable, a workspace crate covered
//! by neither `[audit] crates` nor `[audit] exempt`, or a call the
//! resolver cannot settle without a `[callgraph] resolve` override).
//! Run from anywhere inside the workspace (`just audit`).
//!
//! `--json <path>` writes the stable `AUDIT_report.json`; `--baseline
//! <path>` additionally diffs it against the committed baseline and
//! fails on any new finding or resolution-coverage drop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cshard_audit::report::{baseline_regressions, render, report_json};
use cshard_audit::{scan_workspace, uncovered_crates, Policy};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: cshard-audit [--root <workspace-dir>] \
                     [--json <report-path>] [--baseline <baseline-path>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cshard-audit: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("cshard-audit: no policy.toml found here or in any parent directory");
            return ExitCode::from(2);
        }
    };
    let policy_path = root.join("policy.toml");
    let text = match std::fs::read_to_string(&policy_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cshard-audit: cannot read {}: {e}", policy_path.display());
            return ExitCode::from(2);
        }
    };
    let policy = match Policy::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            // The parse error already carries `policy.toml:<line>`.
            eprintln!("cshard-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let uncovered = uncovered_crates(&root, &policy);
    if !uncovered.is_empty() {
        for krate in &uncovered {
            eprintln!(
                "cshard-audit: crate `crates/{krate}` is in neither [audit] crates nor \
                 [audit] exempt — add it to policy.toml (scanned, or exempt with a reason)"
            );
        }
        return ExitCode::from(2);
    }
    let report = scan_workspace(&root, &policy);
    // An unresolved call is a hole in the reachability argument: taint
    // cannot flow through an edge the resolver never drew. Setup error.
    if !report.ambiguous.is_empty() {
        for amb in &report.ambiguous {
            eprintln!(
                "cshard-audit: ambiguous call `{}` ({} args) at {}:{} — candidates: {}",
                amb.name,
                amb.arity,
                amb.path,
                amb.line,
                amb.candidates.join(", ")
            );
            eprintln!(
                "cshard-audit:   settle it in policy.toml: [callgraph] resolve = \
                 [\"{}/{} -> <id-suffix>|*|external\"]",
                amb.name, amb.arity
            );
        }
        return ExitCode::from(2);
    }
    for finding in &report.findings {
        println!("{finding}");
    }
    let doc = report_json(&report);
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, render(&doc)) {
            eprintln!("cshard-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let mut regressions = Vec::new();
    if let Some(path) = &baseline {
        let baseline_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "cshard-audit: cannot read baseline {}: {e} \
                     (generate it with `just audit-baseline`)",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        match baseline_regressions(&doc, &baseline_text) {
            Ok(r) => regressions = r,
            Err(e) => {
                eprintln!("cshard-audit: {e}");
                return ExitCode::from(2);
            }
        }
        for r in &regressions {
            eprintln!("cshard-audit: baseline regression: {r}");
        }
    }
    if report.findings.is_empty() && regressions.is_empty() {
        println!(
            "cshard-audit: clean — {} files across {} crates; call graph: {} fns, {} edges, \
             {}\u{2030} resolved, {} sink roots reach {} fns",
            report.files_scanned,
            policy.crates.len(),
            report.stats.functions,
            report.stats.edges,
            report.stats.resolution_permille(),
            report.sink_roots,
            report.reachable
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "cshard-audit: {} finding(s), {} baseline regression(s) in {} files scanned",
            report.findings.len(),
            regressions.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `policy.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("policy.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
