//! Pass 1 of the interprocedural analysis: the workspace symbol table.
//!
//! Walks every scanned file's token stream and records each `fn`
//! definition with enough context for call-graph construction: crate and
//! module path (file layout plus inline `mod` blocks), the owning
//! `impl` block's type and trait (when any), the parameter arity
//! (receiver included), the body's token span, and whether the item is
//! `#[deprecated]` or test-only. No type checking happens here — the
//! table is a name/arity index that pass 2 ([`crate::callgraph`])
//! resolves against, with `policy.toml` overrides for the genuinely
//! ambiguous residue.

use crate::lexer::{Token, TokenKind};
use crate::rules::test_spans;
use std::collections::BTreeMap;

/// One file's lexed token stream plus derived spans, shared by every pass.
#[derive(Debug)]
pub struct FileTokens {
    /// Crate directory name under `crates/`.
    pub krate: String,
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `#[cfg(test)] mod` spans (token index ranges, half-open).
    pub test_spans: Vec<(usize, usize)>,
}

impl FileTokens {
    /// Lexes `source` and computes the test spans.
    pub fn new(krate: &str, rel: &str, source: &str) -> FileTokens {
        let tokens = crate::lexer::lex(source);
        let test_spans = test_spans(&tokens);
        FileTokens {
            krate: krate.to_string(),
            rel: rel.to_string(),
            tokens,
            test_spans,
        }
    }

    /// Whether token index `i` lies inside a `#[cfg(test)] mod` span.
    pub fn in_test_span(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| i >= a && i < b)
    }
}

/// One `fn` definition (or trait-method declaration, when `body` is None).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Crate directory name.
    pub krate: String,
    /// Index into the scanned file list.
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Module path within the crate (`pipeline::merge`; empty at root).
    pub module: String,
    /// `impl` block owner type name, when defined inside one.
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Owner` methods (also set for
    /// method declarations inside `trait Trait { ... }` blocks).
    pub trait_name: Option<String>,
    /// The function name.
    pub name: String,
    /// Parameter count, receiver included (`fn f(&self, x: u32)` → 2).
    pub arity: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index span of the body, half-open, excluding the braces.
    /// `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item (or its impl block) carries `#[deprecated]`.
    pub deprecated: bool,
    /// Whether the item is test-only (`#[cfg(test)]` span, `#[test]`).
    pub is_test: bool,
}

impl FnDef {
    /// Stable display id: `crate::module::Owner::name` (module/owner
    /// segments omitted when absent).
    pub fn id(&self) -> String {
        let mut s = self.krate.clone();
        if !self.module.is_empty() {
            s.push_str("::");
            s.push_str(&self.module);
        }
        if let Some(owner) = &self.owner {
            s.push_str("::");
            s.push_str(owner);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// The workspace symbol table: every fn definition, indexed by name.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All definitions, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table over every scanned file.
    pub fn build(files: &[FileTokens]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, ft) in files.iter().enumerate() {
            scan_file(file_idx, ft, &mut table.fns);
        }
        for (i, def) in table.fns.iter().enumerate() {
            table.by_name.entry(def.name.clone()).or_default().push(i);
        }
        table
    }

    /// Definitions implementing `Trait::method` (impl blocks only, not
    /// the trait's own declaration), excluding test-only items.
    pub fn trait_impls(&self, trait_name: &str, method: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.name == method
                    && d.trait_name.as_deref() == Some(trait_name)
                    && d.body.is_some()
                    && !d.is_test
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Module path derived from the file's location under `crates/<k>/src/`.
fn file_module(rel: &str, krate: &str) -> String {
    let prefix = format!("crates/{krate}/src/");
    let Some(tail) = rel.strip_prefix(&prefix) else {
        return String::new();
    };
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<&str> = tail.split('/').collect();
    if matches!(parts.last().copied(), Some("lib" | "main" | "mod")) {
        parts.pop();
    }
    parts.join("::")
}

/// Brace matching: open token index → close token index (unmatched opens
/// map to one past the last token, so spans stay well-formed).
fn brace_pairs(tokens: &[Token]) -> BTreeMap<usize, usize> {
    let mut pairs = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                pairs.insert(open, i);
            }
        }
    }
    for open in stack {
        pairs.insert(open, tokens.len());
    }
    pairs
}

#[derive(Debug)]
enum ScopeKind {
    Mod(String),
    Impl {
        owner: String,
        trait_name: Option<String>,
    },
    Trait(String),
}

struct Scope {
    kind: ScopeKind,
    close: usize,
}

fn scan_file(file_idx: usize, ft: &FileTokens, out: &mut Vec<FnDef>) {
    let tokens = &ft.tokens;
    let braces = brace_pairs(tokens);
    let base_module = file_module(&ft.rel, &ft.krate);
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while scopes.last().is_some_and(|s| i > s.close) {
            scopes.pop();
        }
        let t = &tokens[i];
        if t.is_ident("mod")
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
            && tokens.get(i + 2).is_some_and(|n| n.is_punct("{"))
        {
            let close = braces.get(&(i + 2)).copied().unwrap_or(tokens.len());
            scopes.push(Scope {
                kind: ScopeKind::Mod(tokens[i + 1].text.clone()),
                close,
            });
            i += 3;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((owner, trait_name, open)) = parse_impl_header(tokens, i) {
                let close = braces.get(&open).copied().unwrap_or(tokens.len());
                scopes.push(Scope {
                    kind: ScopeKind::Impl { owner, trait_name },
                    close,
                });
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("trait")
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            // `trait Name [<...>] [: bounds] {` — method declarations inside
            // resolve trait calls even without a default body.
            if let Some(open) = (i + 2..tokens.len().min(i + 40))
                .find(|&j| tokens[j].is_punct("{"))
                .filter(|&j| !(i + 2..j).any(|k| tokens[k].is_punct(";")))
            {
                let close = braces.get(&open).copied().unwrap_or(tokens.len());
                scopes.push(Scope {
                    kind: ScopeKind::Trait(tokens[i + 1].text.clone()),
                    close,
                });
                i = open + 1;
                continue;
            }
        }
        // `fn name` — a definition (a bare `fn(` is a fn-pointer type).
        if t.is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            if let Some(def) = parse_fn(file_idx, ft, &braces, &scopes, &base_module, i) {
                out.push(def);
            }
        }
        i += 1;
    }
}

/// Parses `impl [<G>] [Trait for] Type [where ...] {`, returning the owner
/// type name, the trait name and the body-open token index.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, Option<String>, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(tokens, j)?;
    }
    let (first, mut j) = parse_type_path(tokens, j)?;
    let mut trait_name = None;
    let mut owner = first;
    if tokens.get(j).is_some_and(|t| t.is_ident("for")) {
        let (second, k) = parse_type_path(tokens, j + 1)?;
        trait_name = Some(owner);
        owner = second;
        j = k;
    }
    // Skip a `where` clause; the next `{` at this level opens the body.
    let mut k = j;
    while k < tokens.len() && !tokens[k].is_punct("{") {
        if tokens[k].is_punct(";") {
            return None; // `impl Trait for Type;` — not a block
        }
        k += 1;
    }
    (k < tokens.len()).then_some((owner, trait_name, k))
}

/// Parses a type path (`cshard_runtime::driver::ProtocolDriver`,
/// `Box<D>`, `&mut T`), returning its final base identifier and the index
/// just past the path.
fn parse_type_path(tokens: &[Token], mut j: usize) -> Option<(String, usize)> {
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.is_ident("dyn"))
        || tokens.get(j).is_some_and(|t| t.kind == TokenKind::Lifetime)
    {
        j += 1;
    }
    let mut last = None;
    loop {
        let t = tokens.get(j)?;
        if t.kind != TokenKind::Ident {
            break;
        }
        last = Some(t.text.clone());
        j += 1;
        if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_angles(tokens, j)?;
        }
        if tokens.get(j).is_some_and(|t| t.is_punct("::")) {
            j += 1;
            continue;
        }
        break;
    }
    last.map(|l| (l, j))
}

/// Skips a balanced `<...>` group starting at `j` (which points at `<`).
fn skip_angles(tokens: &[Token], mut j: usize) -> Option<usize> {
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("<") {
            depth += 1;
        } else if tokens[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if tokens[j].is_punct("{") || tokens[j].is_punct(";") {
            return None; // runaway — not a generics group after all
        }
        j += 1;
    }
    None
}

fn parse_fn(
    file_idx: usize,
    ft: &FileTokens,
    braces: &BTreeMap<usize, usize>,
    scopes: &[Scope],
    base_module: &str,
    i: usize,
) -> Option<FnDef> {
    let tokens = &ft.tokens;
    let name = tokens[i + 1].text.clone();
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(tokens, j)?;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let (arity, after_params) = count_params(tokens, j)?;
    // Signature tail: the body `{` or a declaration-ending `;`, at zero
    // bracket depth (return types like `-> [u8; 32]` contain `;`).
    let mut k = after_params;
    let (mut par, mut brk, mut ang) = (0i32, 0i32, 0i32);
    let body = loop {
        let t = tokens.get(k)?;
        if t.is_punct("(") {
            par += 1;
        } else if t.is_punct(")") {
            par -= 1;
        } else if t.is_punct("[") {
            brk += 1;
        } else if t.is_punct("]") {
            brk -= 1;
        } else if t.is_punct("<") {
            ang += 1;
        } else if t.is_punct(">") {
            ang = (ang - 1).max(0);
        } else if par == 0 && brk == 0 {
            if t.is_punct(";") && ang == 0 {
                break None;
            }
            if t.is_punct("{") {
                let close = braces.get(&k).copied().unwrap_or(tokens.len());
                break Some((k + 1, close));
            }
        }
        k += 1;
    };
    let (mut owner, mut trait_name) = (None, None);
    let mut module = base_module.to_string();
    for scope in scopes {
        match &scope.kind {
            ScopeKind::Mod(m) => {
                if !module.is_empty() {
                    module.push_str("::");
                }
                module.push_str(m);
            }
            ScopeKind::Impl {
                owner: o,
                trait_name: t,
            } => {
                owner = Some(o.clone());
                trait_name = t.clone();
            }
            ScopeKind::Trait(t) => {
                owner = Some(t.clone());
                trait_name = Some(t.clone());
            }
        }
    }
    let attrs = item_attr_idents(tokens, i);
    // `#[test]`, `#[cfg(test)]`, `#[tokio::test]` — but not `#[cfg(not(test))]`.
    let is_test = ft.in_test_span(i)
        || (attrs.iter().any(|a| a == "test") && !attrs.iter().any(|a| a == "not"));
    let deprecated = attrs.iter().any(|a| a == "deprecated");
    Some(FnDef {
        krate: ft.krate.clone(),
        file: file_idx,
        path: ft.rel.clone(),
        module,
        owner,
        trait_name,
        name,
        arity,
        line: tokens[i].line,
        body,
        deprecated,
        is_test,
    })
}

/// Counts parameters in the group opening at `open` (which points at `(`),
/// returning `(count, index past the close paren)`. Top-level commas are
/// counted with closure parameter pipes (`|a, b|`) skipped.
pub(crate) fn count_params(tokens: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut last_was_comma = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 && t.is_punct(")") {
                if any && !last_was_comma {
                    commas += 1; // final parameter has no trailing comma
                }
                return Some((commas, j + 1));
            }
        } else if depth == 1 {
            if t.is_punct(",") {
                commas += 1;
                last_was_comma = true;
                j += 1;
                continue;
            }
            if t.is_punct("|") && closure_opens(tokens, j) {
                j = skip_closure_params(tokens, j);
                any = true;
                last_was_comma = false;
                continue;
            }
            any = true;
            last_was_comma = false;
        }
        j += 1;
    }
    None
}

/// Whether the `|` at `j` opens closure parameters (it directly follows a
/// `(`/`,`/`=`/`move`, i.e. expression-start position, not a binary or).
fn closure_opens(tokens: &[Token], j: usize) -> bool {
    j > 0
        && (tokens[j - 1].is_punct("(")
            || tokens[j - 1].is_punct(",")
            || tokens[j - 1].is_punct("=")
            || tokens[j - 1].is_ident("move"))
}

/// Skips from an opening closure `|` to just past its closing `|`.
fn skip_closure_params(tokens: &[Token], open: usize) -> usize {
    let mut j = open + 1;
    while j < tokens.len() {
        if tokens[j].is_punct("|") {
            return j + 1;
        }
        // A closure parameter list cannot contain `;` or `{`.
        if tokens[j].is_punct(";") || tokens[j].is_punct("{") {
            return j;
        }
        j += 1;
    }
    j
}

/// Identifiers appearing inside the attributes (`#[...]`) directly above
/// the item whose `fn` keyword sits at `i` — visibility qualifiers are
/// walked through.
fn item_attr_idents(tokens: &[Token], i: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = i;
    // Walk left over `pub(crate) const async unsafe extern "C" default`.
    while j > 0 {
        let p = &tokens[j - 1];
        let qualifier = ["pub", "const", "async", "unsafe", "extern", "default"]
            .iter()
            .any(|q| p.is_ident(q))
            || p.is_ident("crate")
            || p.is_ident("super")
            || p.is_ident("in")
            || p.is_punct("(")
            || p.is_punct(")")
            || p.kind == TokenKind::Literal;
        if !qualifier {
            break;
        }
        j -= 1;
    }
    // Then over any number of `#[...]` groups.
    while j >= 2 && tokens[j - 1].is_punct("]") {
        let close = j - 1;
        let mut depth = 0i32;
        let mut open = close;
        loop {
            if tokens[open].is_punct("]") {
                depth += 1;
            } else if tokens[open].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if open == 0 {
                return idents;
            }
            open -= 1;
        }
        if open == 0 || !tokens[open - 1].is_punct("#") {
            break;
        }
        for t in &tokens[open + 1..close] {
            if t.kind == TokenKind::Ident {
                idents.push(t.text.clone());
            }
        }
        j = open - 1;
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        let ft = FileTokens::new("core", "crates/core/src/pipeline/merge.rs", src);
        SymbolTable::build(&[ft])
    }

    #[test]
    fn free_fn_and_module_path() {
        let t = table("pub fn helper(a: u32, b: u32) -> u32 { a }");
        assert_eq!(t.fns.len(), 1);
        let d = &t.fns[0];
        assert_eq!(d.id(), "core::pipeline::merge::helper");
        assert_eq!(d.arity, 2);
        assert!(d.body.is_some());
    }

    #[test]
    fn impl_trait_method_is_owned_and_traited() {
        let src = "
            struct MergeStage;
            impl PipelineStage for MergeStage {
                fn run(&mut self, ctx: &mut EpochCtx<'_>) -> Result<(), Error> { Ok(()) }
            }
            impl MergeStage {
                fn inherent(&self) {}
            }
        ";
        let t = table(src);
        let run = t.fns.iter().find(|d| d.name == "run").unwrap();
        assert_eq!(run.owner.as_deref(), Some("MergeStage"));
        assert_eq!(run.trait_name.as_deref(), Some("PipelineStage"));
        assert_eq!(run.arity, 2);
        let inherent = t.fns.iter().find(|d| d.name == "inherent").unwrap();
        assert_eq!(inherent.owner.as_deref(), Some("MergeStage"));
        assert_eq!(inherent.trait_name, None);
    }

    #[test]
    fn generic_impl_for_box_resolves_owner() {
        let src = "
            impl<D: ProtocolDriver + ?Sized> ProtocolDriver for Box<D> {
                fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx) -> Result<(), Error> {
                    (**self).on_event(t, ev, ctx)
                }
            }
        ";
        let t = table(src);
        let d = &t.fns[0];
        assert_eq!(d.owner.as_deref(), Some("Box"));
        assert_eq!(d.trait_name.as_deref(), Some("ProtocolDriver"));
        assert_eq!(d.arity, 4);
    }

    #[test]
    fn trait_declarations_are_recorded_bodiless() {
        let src = "
            pub trait GameDynamics {
                fn step(&mut self);
                fn converged(&self) -> bool { false }
            }
        ";
        let t = table(src);
        let step = t.fns.iter().find(|d| d.name == "step").unwrap();
        assert_eq!(step.trait_name.as_deref(), Some("GameDynamics"));
        assert!(step.body.is_none());
        let conv = t.fns.iter().find(|d| d.name == "converged").unwrap();
        assert!(conv.body.is_some());
    }

    #[test]
    fn array_return_type_semicolon_does_not_end_the_signature() {
        let t = table("pub fn digest(&self) -> [u8; 32] { [0; 32] }");
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.is_some(), "{:?}", t.fns[0]);
    }

    #[test]
    fn closure_commas_do_not_inflate_arity() {
        let t = table("fn drain(a: u32, f: F) -> u32 { go(a, |x, y| x + y) }");
        assert_eq!(t.fns[0].arity, 2);
    }

    #[test]
    fn deprecated_and_test_attrs_are_seen() {
        let src = "
            #[deprecated(since = \"0.7\", note = \"use RunBuilder\")]
            pub fn old_run() {}
            #[test]
            fn check() {}
            #[cfg(test)]
            mod tests {
                fn helper_in_tests() {}
            }
        ";
        let t = table(src);
        let old = t.fns.iter().find(|d| d.name == "old_run").unwrap();
        assert!(old.deprecated);
        assert!(!old.is_test);
        assert!(t.fns.iter().find(|d| d.name == "check").unwrap().is_test);
        assert!(
            t.fns
                .iter()
                .find(|d| d.name == "helper_in_tests")
                .unwrap()
                .is_test
        );
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let t = table("mod inner { pub fn f() {} }");
        assert_eq!(t.fns[0].id(), "core::pipeline::merge::inner::f");
    }

    #[test]
    fn trait_impls_lists_impls_not_declarations() {
        let src = "
            trait Driver { fn on_event(&mut self, e: u32) -> bool; }
            struct A; struct B;
            impl Driver for A { fn on_event(&mut self, e: u32) -> bool { true } }
            impl Driver for B { fn on_event(&mut self, e: u32) -> bool { false } }
        ";
        let t = table(src);
        let impls = t.trait_impls("Driver", "on_event");
        assert_eq!(impls.len(), 2);
        assert!(impls
            .iter()
            .all(|&i| t.fns[i].trait_name.as_deref() == Some("Driver")));
    }
}
