//! The data-driven audit policy: `policy.toml` at the workspace root.
//!
//! The workspace has no TOML dependency (the build is fully offline), so
//! this module parses the narrow dialect the policy actually uses:
//!
//! * `#` comments, blank lines;
//! * `[table]` / `[table.sub]` headers;
//! * `key = "string"`, `key = true|false`, `key = 123`;
//! * `key = ["a", "b", ...]` — arrays of strings, single- or multi-line.
//!
//! Anything outside the dialect is a [`PolicyError`] with the offending
//! line — never a panic — so a typo in the policy fails the audit run
//! with a diagnostic instead of taking the gate down with a backtrace.

use std::collections::BTreeMap;
use std::fmt;

/// A policy file failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line in `policy.toml` (0 when the error is file-level).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "policy.toml: {}", self.message)
        } else {
            write!(f, "policy.toml:{}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for PolicyError {}

fn err(line: usize, message: impl Into<String>) -> PolicyError {
    PolicyError {
        line,
        message: message.into(),
    }
}

/// A parsed TOML-subset value.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    Array(Vec<String>),
}

/// One rule's policy entry.
#[derive(Clone, Debug, Default)]
pub struct RulePolicy {
    /// Human description, echoed in diagnostics.
    pub description: String,
    /// Crate names (directory names under `crates/`) the rule applies to.
    /// Empty means "every crate in `[audit] crates`".
    pub crates: Vec<String>,
    /// Workspace-relative file paths exempt from the rule. Each entry in
    /// `policy.toml` carries a `#` comment stating *why* it is exempt.
    pub allow: Vec<String>,
    /// Extra rule-specific string lists (e.g. `required` headers for
    /// AH001), keyed by the TOML key.
    pub lists: BTreeMap<String, Vec<String>>,
}

impl RulePolicy {
    /// Whether `path` (workspace-relative, `/`-separated) is allowlisted.
    pub fn is_allowed(&self, path: &str) -> bool {
        self.allow.iter().any(|a| a == path)
    }

    /// Whether the rule applies to `krate`, given the audit-wide default
    /// crate list.
    pub fn applies_to(&self, krate: &str, default_crates: &[String]) -> bool {
        if self.crates.is_empty() {
            default_crates.iter().any(|c| c == krate)
        } else {
            self.crates.iter().any(|c| c == krate)
        }
    }
}

/// Where an ambiguous call should resolve, per `[callgraph] resolve`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveTarget {
    /// The call is out of workspace scope (`-> external`).
    External,
    /// Fan out to every candidate (`-> *`).
    All,
    /// The unique candidate whose display id ends with this suffix.
    To(String),
}

/// The `[callgraph]` table: sink roots and ambiguity overrides for the
/// interprocedural passes.
#[derive(Clone, Debug, Default)]
pub struct CallGraphPolicy {
    /// Sink-root specs: `"Trait::method"` (every impl of that trait
    /// method) or `"calls:Owner::method"` (every fn with a resolved edge
    /// to `Owner::method` — e.g. the closures handed to
    /// `WorkScheduler::drain` live in their enclosing fn's body).
    pub sinks: Vec<String>,
    /// `(name, arity)` → target for calls the resolver cannot settle.
    pub resolve: BTreeMap<(String, usize), ResolveTarget>,
}

impl CallGraphPolicy {
    /// The override for an ambiguous `(name, arity)` call, if any.
    pub fn resolve_for(&self, name: &str, arity: usize) -> Option<&ResolveTarget> {
        self.resolve.get(&(name.to_string(), arity))
    }
}

/// Parses one `[callgraph] resolve` entry: `"name/arity -> target"`.
fn parse_resolve_entry(
    entry: &str,
    lineno: usize,
) -> Result<((String, usize), ResolveTarget), PolicyError> {
    let (lhs, rhs) = entry.split_once("->").ok_or_else(|| {
        err(
            lineno,
            format!("resolve entry `{entry}` must be `name/arity -> target`"),
        )
    })?;
    let lhs = lhs.trim();
    let (name, arity) = lhs.split_once('/').ok_or_else(|| {
        err(
            lineno,
            format!("resolve entry `{entry}`: left side must be `name/arity`"),
        )
    })?;
    let arity: usize = arity.trim().parse().map_err(|_| {
        err(
            lineno,
            format!("resolve entry `{entry}`: arity `{arity}` is not a number"),
        )
    })?;
    let target = match rhs.trim() {
        "" => {
            return Err(err(
                lineno,
                format!("resolve entry `{entry}` is missing a target after `->`"),
            ))
        }
        "external" => ResolveTarget::External,
        "*" => ResolveTarget::All,
        suffix => ResolveTarget::To(suffix.to_string()),
    };
    Ok(((name.trim().to_string(), arity), target))
}

/// The whole audit policy.
#[derive(Clone, Debug, Default)]
pub struct Policy {
    /// Crates scanned by default (directory names under `crates/`).
    pub crates: Vec<String>,
    /// Crates deliberately outside the determinism contract (directory
    /// names under `crates/`). Every workspace crate must appear in
    /// exactly one of `crates` or `exempt`; a crate in neither is a
    /// coverage gap and the audit binary refuses to run.
    pub exempt: Vec<String>,
    /// Per-rule entries, keyed by rule id (`ND001`, ...).
    pub rules: BTreeMap<String, RulePolicy>,
    /// Call-graph configuration (sinks, ambiguity overrides).
    pub callgraph: CallGraphPolicy,
}

impl Policy {
    /// Parses a policy document.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut policy = Policy::default();
        let mut table: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated table header"))?
                    .trim();
                if name.is_empty() {
                    return Err(err(lineno, "empty table header"));
                }
                table = Some(name.to_string());
                continue;
            }
            let (key, mut value_text) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            let key = key.trim();
            if key.is_empty() {
                return Err(err(lineno, "missing key before `=`"));
            }
            // Multi-line arrays: keep consuming lines until the brackets
            // balance (strings in the policy dialect never contain `[`/`]`).
            let mut joined = value_text.trim().to_string();
            while joined.starts_with('[') && !brackets_balanced(&joined) {
                let Some((_, next)) = lines.next() else {
                    return Err(err(lineno, format!("unterminated array for key `{key}`")));
                };
                joined.push(' ');
                joined.push_str(strip_comment(next).trim());
            }
            value_text = &joined;
            let value = parse_value(value_text.trim(), lineno)?;
            policy.insert(table.as_deref(), key, value, lineno)?;
        }
        policy.validate()?;
        Ok(policy)
    }

    fn insert(
        &mut self,
        table: Option<&str>,
        key: &str,
        value: Value,
        lineno: usize,
    ) -> Result<(), PolicyError> {
        match table {
            Some("audit") => match (key, value) {
                ("crates", Value::Array(v)) => {
                    self.crates = v;
                    Ok(())
                }
                ("crates", _) => Err(err(lineno, "`crates` must be an array of strings")),
                ("exempt", Value::Array(v)) => {
                    self.exempt = v;
                    Ok(())
                }
                ("exempt", _) => Err(err(lineno, "`exempt` must be an array of strings")),
                (other, _) => Err(err(lineno, format!("unknown key `{other}` in [audit]"))),
            },
            Some("callgraph") => match (key, value) {
                ("sinks", Value::Array(v)) => {
                    self.callgraph.sinks = v;
                    Ok(())
                }
                ("sinks", _) => Err(err(lineno, "`sinks` must be an array of strings")),
                ("resolve", Value::Array(v)) => {
                    for entry in &v {
                        let (key, target) = parse_resolve_entry(entry, lineno)?;
                        self.callgraph.resolve.insert(key, target);
                    }
                    Ok(())
                }
                ("resolve", _) => Err(err(lineno, "`resolve` must be an array of strings")),
                (other, _) => Err(err(lineno, format!("unknown key `{other}` in [callgraph]"))),
            },
            Some(t) if t.starts_with("rules.") => {
                let id = &t["rules.".len()..];
                if id.is_empty() {
                    return Err(err(lineno, "empty rule id in [rules.] header"));
                }
                let rule = self.rules.entry(id.to_string()).or_default();
                match (key, value) {
                    ("description", Value::Str(s)) => rule.description = s,
                    ("crates", Value::Array(v)) => rule.crates = v,
                    ("allow", Value::Array(v)) => rule.allow = v,
                    (_, Value::Array(v)) => {
                        rule.lists.insert(key.to_string(), v);
                    }
                    (k, _) => {
                        return Err(err(
                            lineno,
                            format!("rule key `{k}` must be a string or array of strings"),
                        ))
                    }
                }
                Ok(())
            }
            Some(other) => Err(err(lineno, format!("unknown table `[{other}]`"))),
            None => Err(err(
                lineno,
                format!("key `{key}` outside any table — expected [audit] or [rules.<ID>]"),
            )),
        }
    }

    fn validate(&self) -> Result<(), PolicyError> {
        if self.crates.is_empty() {
            return Err(err(0, "[audit] crates list is missing or empty"));
        }
        if let Some(both) = self.exempt.iter().find(|e| self.crates.contains(e)) {
            return Err(err(
                0,
                format!("crate `{both}` is both scanned ([audit] crates) and exempt"),
            ));
        }
        for (id, rule) in &self.rules {
            for c in &rule.crates {
                if !self.crates.iter().any(|k| k == c) {
                    return Err(err(
                        0,
                        format!("rule {id} names crate `{c}` not in [audit] crates"),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Strips a `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let (mut opens, mut closes, mut in_str) = (0usize, 0usize, false);
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => opens += 1,
            ']' if !in_str => closes += 1,
            _ => {}
        }
    }
    opens <= closes
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, PolicyError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, lineno)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(lineno, "arrays may only contain strings")),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        if inner.contains('"') {
            return Err(err(lineno, "unexpected `\"` inside string"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("cannot parse value `{text}`")))
}

/// Splits array contents on commas outside strings.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r##"
# a comment
[audit]
crates = ["core", "games"]

[rules.ND001]
description = "no wall clock"
crates = ["core"]
allow = [
    "crates/core/src/a.rs",  # why: harness
    "crates/core/src/b.rs",
]

[rules.AH001]
description = "headers"
required = ["#![warn(missing_docs)]"]
"##;

    #[test]
    fn parses_the_dialect() {
        let p = Policy::parse(GOOD).unwrap();
        assert_eq!(p.crates, vec!["core", "games"]);
        let nd = &p.rules["ND001"];
        assert_eq!(nd.description, "no wall clock");
        assert_eq!(nd.crates, vec!["core"]);
        assert_eq!(nd.allow.len(), 2);
        assert!(nd.is_allowed("crates/core/src/a.rs"));
        assert!(!nd.is_allowed("crates/core/src/c.rs"));
        let ah = &p.rules["AH001"];
        assert_eq!(ah.lists["required"], vec!["#![warn(missing_docs)]"]);
    }

    #[test]
    fn applies_to_defaults_to_audit_crates() {
        let p = Policy::parse(GOOD).unwrap();
        assert!(p.rules["AH001"].applies_to("games", &p.crates));
        assert!(!p.rules["ND001"].applies_to("games", &p.crates));
    }

    #[test]
    fn error_reports_the_line() {
        let e = Policy::parse("[audit]\ncrates = [\"a\"]\n\n[rules.X]\nboom\n").unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.to_string().contains("policy.toml:5"), "{e}");
    }

    #[test]
    fn unknown_table_rejected() {
        let e = Policy::parse("[nonsense]\nx = 1\n").unwrap_err();
        assert!(e.message.contains("unknown table"), "{e}");
    }

    #[test]
    fn missing_crates_rejected() {
        let e = Policy::parse("[rules.X]\ndescription = \"d\"\n").unwrap_err();
        assert!(e.message.contains("crates list"), "{e}");
    }

    #[test]
    fn rule_crate_must_exist() {
        let e = Policy::parse("[audit]\ncrates = [\"a\"]\n[rules.X]\ncrates = [\"zzz\"]\n")
            .unwrap_err();
        assert!(e.message.contains("zzz"), "{e}");
    }

    #[test]
    fn exempt_list_parses() {
        let p =
            Policy::parse("[audit]\ncrates = [\"a\"]\nexempt = [\"tools\", \"bench\"]\n").unwrap();
        assert_eq!(p.exempt, vec!["tools", "bench"]);
    }

    #[test]
    fn crate_cannot_be_both_scanned_and_exempt() {
        let e = Policy::parse("[audit]\ncrates = [\"a\", \"b\"]\nexempt = [\"b\"]\n").unwrap_err();
        assert!(e.message.contains("both scanned"), "{e}");
    }

    #[test]
    fn callgraph_table_parses_sinks_and_resolve() {
        let p = Policy::parse(
            "[audit]\ncrates = [\"a\"]\n[callgraph]\n\
             sinks = [\"ProtocolDriver::on_event\", \"calls:WorkScheduler::drain\"]\n\
             resolve = [\n  \"go/1 -> x::go\",  # comment\n  \"step/2 -> *\",\n  \"len/1 -> external\",\n]\n",
        )
        .unwrap();
        assert_eq!(p.callgraph.sinks.len(), 2);
        assert_eq!(
            p.callgraph.resolve_for("go", 1),
            Some(&ResolveTarget::To("x::go".into()))
        );
        assert_eq!(
            p.callgraph.resolve_for("step", 2),
            Some(&ResolveTarget::All)
        );
        assert_eq!(
            p.callgraph.resolve_for("len", 1),
            Some(&ResolveTarget::External)
        );
        assert_eq!(p.callgraph.resolve_for("go", 2), None);
    }

    #[test]
    fn malformed_resolve_entry_is_a_line_diagnostic() {
        let e = Policy::parse("[audit]\ncrates = [\"a\"]\n[callgraph]\nresolve = [\"nope\"]\n")
            .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("name/arity -> target"), "{e}");
    }

    #[test]
    fn comments_inside_arrays_are_stripped() {
        let p = Policy::parse("[audit]\ncrates = [\n  \"a\", # one\n  \"b\",\n]\n").unwrap();
        assert_eq!(p.crates, vec!["a", "b"]);
    }
}
