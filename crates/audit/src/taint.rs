//! Pass 3 of the interprocedural analysis: nondeterminism/panic taint.
//!
//! Determinism is a property of the *replay path*, not of individual
//! files: a wall-clock read inside a helper three calls below
//! `ProtocolDriver::on_event` breaks byte-identical replay exactly as
//! much as one inside the driver itself. This pass therefore walks the
//! call graph ([`crate::callgraph`]) backwards from the protocol **sink
//! roots** the policy names (`[callgraph] sinks`) and flags every
//! nondeterminism or panic **source** inside a reachable function body,
//! printing the full sink→source call chain with `file:line` per hop.
//!
//! Sink specs come in two forms:
//!
//! * `"Trait::method"` — every bodied, non-test impl of that trait
//!   method is a root (`ProtocolDriver::on_event`, `PipelineStage::run`,
//!   `GameDynamics::step`);
//! * `"calls:Owner::method"` — every function with a resolved edge to
//!   that method is a root. Closures inline into the enclosing
//!   function's body span, so this captures task bodies handed to
//!   `WorkScheduler::drain` via the function that passes them.
//!
//! Reachability-scoped rules (the `1xx` ids mirror their file-scoped
//! `0xx` cousins, which stay as the first line of defence in protocol
//! crates; the `1xx` rules extend the net to *any* workspace crate a
//! sink can reach):
//!
//! | id    | source                                                    |
//! |-------|-----------------------------------------------------------|
//! | ND101 | wall-clock APIs (`Instant`, `SystemTime`)                 |
//! | ND102 | ambient entropy (`thread_rng`, `from_entropy`, `OsRng`)   |
//! | ND103 | iteration over `HashMap`/`HashSet`                        |
//! | PH101 | `unwrap`/`expect`/`panic!`-class exits (opt-in: indexing) |
//! | CL001 | lossy `as` narrowing casts                                |
//!
//! `DP001` (calls to `#[deprecated]` workspace items) also lives here —
//! it needs the resolved edges, not reachability: a deprecated call is
//! wrong wherever it sits.

use crate::callgraph::CallGraph;
use crate::policy::{Policy, RulePolicy};
use crate::rules::{hash_iteration_sites, Finding, Site};
use crate::symbols::{FileTokens, FnDef, SymbolTable};
use std::collections::{BTreeSet, VecDeque};

/// The outcome of the taint pass.
#[derive(Debug, Default)]
pub struct TaintReport {
    /// Reachability findings, unsorted (the scanner sorts globally).
    pub findings: Vec<Finding>,
    /// Sink-root function indices, sorted by display id.
    pub sink_roots: Vec<usize>,
    /// Functions reachable from any root (roots included).
    pub reachable: usize,
}

/// Runs taint propagation over the call graph.
pub fn analyze(
    files: &[FileTokens],
    symbols: &SymbolTable,
    graph: &CallGraph,
    policy: &Policy,
) -> TaintReport {
    let roots = sink_roots(symbols, graph, &policy.callgraph.sinks);
    let (parent, order) = bfs(symbols, graph, &roots);
    let mut report = TaintReport {
        sink_roots: roots,
        reachable: order.len(),
        ..TaintReport::default()
    };
    let mut seen: BTreeSet<(&'static str, String, usize, String)> = BTreeSet::new();
    for &fn_idx in &order {
        let def = &symbols.fns[fn_idx];
        let Some((start, end)) = def.body else {
            continue;
        };
        let ft = &files[def.file];
        for rule in REACH_RULES {
            let Some(rp) = policy.rules.get(rule) else {
                continue;
            };
            if !rp.applies_to(&def.krate, &policy.crates) || rp.is_allowed(&def.path) {
                continue;
            }
            for site in source_sites(rule, rp, ft, start, end) {
                let key = (rule, def.path.clone(), site.line, site.what.clone());
                if !seen.insert(key) {
                    continue;
                }
                let mut f = Finding::new(
                    rule,
                    &def.path,
                    site.line,
                    format!("{} — {}", site.what, rp.description),
                );
                f.chain = chain_to(symbols, &parent, fn_idx);
                report.findings.push(f);
            }
        }
    }
    report
        .findings
        .extend(deprecated_calls(symbols, graph, policy));
    report
}

/// Resolves the policy's sink specs to function indices, sorted by
/// display id (so BFS tie-breaking — and with it chain selection — is
/// deterministic across runs).
pub fn sink_roots(symbols: &SymbolTable, graph: &CallGraph, sinks: &[String]) -> Vec<usize> {
    let mut roots: Vec<usize> = Vec::new();
    for spec in sinks {
        let hits = if let Some(target) = spec.strip_prefix("calls:") {
            let Some((owner, method)) = target.split_once("::") else {
                continue;
            };
            let targets: Vec<usize> = symbols
                .fns
                .iter()
                .enumerate()
                .filter(|(_, d)| d.name == method && d.owner.as_deref() == Some(owner))
                .map(|(i, _)| i)
                .collect();
            graph.callers_of(&targets)
        } else {
            let Some((trait_name, method)) = spec.split_once("::") else {
                continue;
            };
            symbols.trait_impls(trait_name, method)
        };
        for i in hits {
            if symbols.fns[i].body.is_some() && !symbols.fns[i].is_test && !roots.contains(&i) {
                roots.push(i);
            }
        }
    }
    roots.sort_by_key(|&i| symbols.fns[i].id());
    roots
}

/// Breadth-first search from all roots at once: shortest chains, ties
/// broken by root id order. Returns the parent map (caller index + call
/// line per reached function; `None` at roots) and the visit order.
#[allow(clippy::type_complexity)]
fn bfs(
    symbols: &SymbolTable,
    graph: &CallGraph,
    roots: &[usize],
) -> (Vec<Option<(usize, usize)>>, Vec<usize>) {
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; symbols.fns.len()];
    let mut visited = vec![false; symbols.fns.len()];
    let mut order = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if !visited[r] {
            visited[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        order.push(f);
        for e in &graph.edges[f] {
            if visited[e.callee] || symbols.fns[e.callee].is_test {
                continue;
            }
            visited[e.callee] = true;
            parent[e.callee] = Some((f, e.line));
            queue.push_back(e.callee);
        }
    }
    (parent, order)
}

/// The sink→source call chain for `fn_idx`: element 0 is the root
/// (`id (file:line)` of its definition), each further element one hop
/// (`id (called at file:line)` — the line is the call site in the
/// *previous* hop's body).
fn chain_to(
    symbols: &SymbolTable,
    parent: &[Option<(usize, usize)>],
    fn_idx: usize,
) -> Vec<String> {
    // Walk source → root, then reverse.
    let mut hops: Vec<(usize, Option<usize>)> = Vec::new();
    let mut cur = fn_idx;
    hops.push((cur, None));
    while let Some((caller, line)) = parent[cur] {
        hops.last_mut().expect("non-empty").1 = Some(line);
        hops.push((caller, None));
        cur = caller;
    }
    hops.reverse();
    let mut chain = Vec::with_capacity(hops.len());
    for (i, (idx, _)) in hops.iter().enumerate() {
        let def = &symbols.fns[*idx];
        if i == 0 {
            chain.push(format!("{} ({}:{})", def.id(), def.path, def.line));
        } else {
            // The call line travels with the callee hop: it was recorded
            // on that element while walking upwards.
            let (_, call_line) = hops[i];
            let caller = &symbols.fns[hops[i - 1].0];
            let line = call_line.unwrap_or(def.line);
            chain.push(format!("{} (called at {}:{})", def.id(), caller.path, line));
        }
    }
    chain
}

/// The reachability-scoped rule ids, in reporting order.
pub const REACH_RULES: [&str; 5] = ["ND101", "ND102", "ND103", "PH101", "CL001"];

/// Nondeterminism/panic sources of `rule` within `[start, end)` of `ft`.
fn source_sites(
    rule: &str,
    rp: &RulePolicy,
    ft: &FileTokens,
    start: usize,
    end: usize,
) -> Vec<Site> {
    let tokens = &ft.tokens;
    let end = end.min(tokens.len());
    match rule {
        "ND101" => ident_sites(ft, start, end, &["Instant", "SystemTime"], "wall-clock API"),
        "ND102" => ident_sites(
            ft,
            start,
            end,
            &["thread_rng", "from_entropy", "OsRng", "getrandom"],
            "ambient randomness",
        ),
        "ND103" => hash_iteration_sites(tokens)
            .into_iter()
            .filter(|s| s.index >= start && s.index < end)
            .collect(),
        "PH101" => panic_sites(rp, ft, start, end),
        "CL001" => narrowing_cast_sites(rp, ft, start, end),
        _ => Vec::new(),
    }
}

fn ident_sites(
    ft: &FileTokens,
    start: usize,
    end: usize,
    names: &[&str],
    label: &str,
) -> Vec<Site> {
    let mut sites = Vec::new();
    for i in start..end {
        let t = &ft.tokens[i];
        if names.iter().any(|n| t.is_ident(n)) {
            sites.push(Site {
                index: i,
                line: t.line,
                what: format!("{label} `{}`", t.text),
            });
        }
    }
    sites
}

/// PH101 sources. The `sources` policy list selects which classes fire;
/// by default everything but `index` (index panics are deterministic —
/// the PH rules are typed-error hygiene — so indexing is opt-in for
/// codebases that want the stricter contract).
fn panic_sites(rp: &RulePolicy, ft: &FileTokens, start: usize, end: usize) -> Vec<Site> {
    let default: Vec<String> = [
        "unwrap",
        "expect",
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let sources = rp.lists.get("sources").unwrap_or(&default);
    let on = |s: &str| sources.iter().any(|x| x == s);
    let tokens = &ft.tokens;
    let mut sites = Vec::new();
    for i in start..end {
        let t = &tokens[i];
        let dotted = i > 0 && tokens[i - 1].is_punct(".");
        let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        let banged = tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if dotted && called && (t.is_ident("unwrap") || t.is_ident("expect")) && on(&t.text) {
            sites.push(Site {
                index: i,
                line: t.line,
                what: format!("panic source `.{}()`", t.text),
            });
        }
        if banged
            && ["panic", "unreachable", "todo", "unimplemented"]
                .iter()
                .any(|m| t.is_ident(m))
            && on(&t.text)
        {
            sites.push(Site {
                index: i,
                line: t.line,
                what: format!("panic source `{}!`", t.text),
            });
        }
        // Indexing `name[...]` — opt-in via `sources = [..., "index"]`.
        if on("index")
            && t.is_punct("[")
            && i > start
            && tokens[i - 1].kind == crate::lexer::TokenKind::Ident
            && !tokens[i - 1].is_ident("in")
        {
            sites.push(Site {
                index: i,
                line: t.line,
                what: format!("panic source: indexing `{}[..]`", tokens[i - 1].text),
            });
        }
    }
    sites
}

/// CL001 sources: `as T` where `T` is in the `narrow` list (defaults to
/// the types that can silently drop bits on 64-bit event data; `usize`
/// is excluded — it is the native width).
fn narrowing_cast_sites(rp: &RulePolicy, ft: &FileTokens, start: usize, end: usize) -> Vec<Site> {
    let default: Vec<String> = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let narrow = rp.lists.get("narrow").unwrap_or(&default);
    let tokens = &ft.tokens;
    let mut sites = Vec::new();
    for i in start..end {
        if !tokens[i].is_ident("as") {
            continue;
        }
        let Some(ty) = tokens.get(i + 1) else {
            continue;
        };
        if narrow.iter().any(|n| ty.is_ident(n)) {
            sites.push(Site {
                index: i,
                line: tokens[i].line,
                what: format!("lossy `as {}` narrowing cast", ty.text),
            });
        }
    }
    sites
}

/// DP001: every resolved call edge whose callee is `#[deprecated]`,
/// flagged at the call site (any non-test function, reachable or not).
fn deprecated_calls(symbols: &SymbolTable, graph: &CallGraph, policy: &Policy) -> Vec<Finding> {
    let Some(rp) = policy.rules.get("DP001") else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (caller_idx, edges) in graph.edges.iter().enumerate() {
        let caller: &FnDef = &symbols.fns[caller_idx];
        if !rp.applies_to(&caller.krate, &policy.crates) || rp.is_allowed(&caller.path) {
            continue;
        }
        for e in edges {
            let callee = &symbols.fns[e.callee];
            if !callee.deprecated {
                continue;
            }
            if !seen.insert((caller.path.clone(), e.line, callee.id())) {
                continue;
            }
            findings.push(Finding::new(
                "DP001",
                &caller.path,
                e.line,
                format!("call to deprecated `{}` — {}", callee.id(), rp.description),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    /// A two-file mini-workspace: a driver impl whose helper (in another
    /// file) reads the wall clock two hops down.
    fn two_hop_fixture() -> (Vec<FileTokens>, SymbolTable, CallGraph, Policy) {
        let driver = "
            struct MyDriver;
            impl ProtocolDriver for MyDriver {
                fn on_event(&mut self, t: u64, ev: u32) -> bool {
                    stamp(ev) > 0
                }
            }
        ";
        let helper = "
            pub fn stamp(ev: u32) -> u64 {
                now_nanos() + ev as u64
            }
            fn now_nanos() -> u64 {
                let t = Instant::now();
                0
            }
        ";
        let files = vec![
            FileTokens::new("proto", "crates/proto/src/driver.rs", driver),
            FileTokens::new("util", "crates/util/src/clock.rs", helper),
        ];
        let symbols = SymbolTable::build(&files);
        let policy = Policy::parse(
            "
            [audit]
            crates = [\"proto\", \"util\"]
            [callgraph]
            sinks = [\"ProtocolDriver::on_event\"]
            [rules.ND101]
            description = \"wall clocks break replay\"
            ",
        )
        .unwrap();
        let graph = CallGraph::build(&files, &symbols, &policy.callgraph);
        (files, symbols, graph, policy)
    }

    #[test]
    fn two_hop_taint_builds_the_full_chain() {
        let (files, symbols, graph, policy) = two_hop_fixture();
        let report = analyze(&files, &symbols, &graph, &policy);
        assert_eq!(report.sink_roots.len(), 1);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.rule, "ND101");
        assert_eq!(f.path, "crates/util/src/clock.rs");
        assert!(f.message.contains("Instant"), "{f:?}");
        assert_eq!(f.chain.len(), 3, "{:?}", f.chain);
        assert!(
            f.chain[0].contains("MyDriver::on_event (crates/proto/src/driver.rs:"),
            "{:?}",
            f.chain
        );
        assert!(
            f.chain[1].contains("stamp (called at crates/proto/src/driver.rs:"),
            "{:?}",
            f.chain
        );
        assert!(
            f.chain[2].contains("now_nanos (called at crates/util/src/clock.rs:"),
            "{:?}",
            f.chain
        );
    }

    #[test]
    fn unreachable_sources_stay_silent() {
        let (files, symbols, graph, mut policy) = two_hop_fixture();
        policy.callgraph.sinks.clear();
        let report = analyze(&files, &symbols, &graph, &policy);
        assert_eq!(report.sink_roots.len(), 0);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn calls_sink_spec_roots_the_calling_function() {
        let src = "
            struct WorkScheduler;
            impl WorkScheduler {
                fn drain(&mut self, f: F) { }
            }
            fn execute(s: &mut WorkScheduler, x: Option<u32>) {
                s.drain(|| { });
                let v = x.unwrap();
            }
        ";
        let files = vec![FileTokens::new("rt", "crates/rt/src/h.rs", src)];
        let symbols = SymbolTable::build(&files);
        let policy = Policy::parse(
            "
            [audit]
            crates = [\"rt\"]
            [callgraph]
            sinks = [\"calls:WorkScheduler::drain\"]
            [rules.PH101]
            description = \"typed errors only\"
            ",
        )
        .unwrap();
        let graph = CallGraph::build(&files, &symbols, &policy.callgraph);
        let report = analyze(&files, &symbols, &graph, &policy);
        let execute = symbols
            .fns
            .iter()
            .position(|d| d.name == "execute")
            .unwrap();
        assert_eq!(report.sink_roots, vec![execute]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("unwrap"));
        // The source sits in the root itself: single-hop chain.
        assert_eq!(report.findings[0].chain.len(), 1);
    }

    #[test]
    fn ph101_sources_list_gates_indexing() {
        let src = "
            struct D;
            impl Dyn for D {
                fn step(&mut self) { let x = self.v[3]; }
            }
        ";
        let files = vec![FileTokens::new("games", "crates/games/src/g.rs", src)];
        let symbols = SymbolTable::build(&files);
        let mk = |sources: &str| {
            Policy::parse(&format!(
                "
                [audit]
                crates = [\"games\"]
                [callgraph]
                sinks = [\"Dyn::step\"]
                [rules.PH101]
                description = \"d\"
                {sources}
                "
            ))
            .unwrap()
        };
        let without = mk("");
        let graph = CallGraph::build(&files, &symbols, &without.callgraph);
        assert!(analyze(&files, &symbols, &graph, &without)
            .findings
            .is_empty());
        let with = mk("sources = [\"index\"]");
        let report = analyze(&files, &symbols, &graph, &with);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("indexing"));
    }

    #[test]
    fn cl001_flags_only_reachable_narrowing_casts() {
        let src = "
            struct S;
            impl Stage for S {
                fn run(&mut self, x: u64) -> u32 { x as u32 }
            }
            fn unrelated(x: u64) -> u32 { x as u32 }
        ";
        let files = vec![FileTokens::new("core", "crates/core/src/s.rs", src)];
        let symbols = SymbolTable::build(&files);
        let policy = Policy::parse(
            "
            [audit]
            crates = [\"core\"]
            [callgraph]
            sinks = [\"Stage::run\"]
            [rules.CL001]
            description = \"narrowing drops bits\"
            ",
        )
        .unwrap();
        let graph = CallGraph::build(&files, &symbols, &policy.callgraph);
        let report = analyze(&files, &symbols, &graph, &policy);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].line, 4);
    }

    #[test]
    fn dp001_flags_calls_to_deprecated_items() {
        let src = "
            #[deprecated]
            pub fn old_api(x: u32) -> u32 { x }
            pub fn caller() -> u32 { old_api(1) }
        ";
        let files = vec![FileTokens::new("core", "crates/core/src/d.rs", src)];
        let symbols = SymbolTable::build(&files);
        let policy = Policy::parse(
            "
            [audit]
            crates = [\"core\"]
            [rules.DP001]
            description = \"migrate off deprecated APIs\"
            ",
        )
        .unwrap();
        let graph = CallGraph::build(&files, &symbols, &policy.callgraph);
        let report = analyze(&files, &symbols, &graph, &policy);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.rule, "DP001");
        assert!(f.message.contains("old_api"), "{f:?}");
        assert_eq!(f.line, 4);
    }

    #[test]
    fn rule_allow_list_silences_the_source_file() {
        let (files, symbols, graph, _) = two_hop_fixture();
        let policy = Policy::parse(
            "
            [audit]
            crates = [\"proto\", \"util\"]
            [callgraph]
            sinks = [\"ProtocolDriver::on_event\"]
            [rules.ND101]
            description = \"d\"
            allow = [\"crates/util/src/clock.rs\"]
            ",
        )
        .unwrap();
        let report = analyze(&files, &symbols, &graph, &policy);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
