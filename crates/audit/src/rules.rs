//! The audit rules, applied to a lexed token stream.
//!
//! Every rule is identified by a stable id (`ND001`, ...), is configured
//! by an entry in `policy.toml`, and reports findings as `file:line`
//! diagnostics. The rules are token-level heuristics — deliberately
//! conservative, so a finding is near-certainly real; the `allow` lists in
//! the policy handle the residue, each entry with a comment saying why.
//! See DESIGN.md "Determinism invariants" for the rationale per rule.

use crate::lexer::{Token, TokenKind};
use crate::policy::RulePolicy;
use std::fmt;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`ND001`, `PH001`, ...).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation.
    pub message: String,
    /// For reachability-scoped rules (`ND101`, ...): the sink→source
    /// call chain, one `id (file:line)` hop per element, sink root
    /// first. Empty for file-scoped rules.
    pub chain: Vec<String>,
}

impl Finding {
    /// A chainless (file-scoped) finding.
    pub fn new(rule: &'static str, path: &str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            chain: Vec::new(),
        }
    }
}

impl fmt::Display for Finding {
    /// `file:line: RULE msg` head line, then one indented line per
    /// call-chain hop (sink root first, `->`-prefixed below it).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )?;
        for (i, hop) in self.chain.iter().enumerate() {
            let arrow = if i == 0 { "" } else { "-> " };
            write!(f, "\n    {arrow}{hop}")?;
        }
        Ok(())
    }
}

/// Ids of every token-level rule, in reporting order. `AH001` is file-level
/// (crate headers) and lives in [`crate::scan`]; the reachability-scoped
/// rules (`ND101`...) live in [`crate::taint`].
pub const TOKEN_RULES: [&str; 6] = ["ND001", "ND002", "ND003", "PH001", "FD001", "AR001"];

/// Token index spans (half-open) covered by `#[cfg(test)] mod ... { }`.
///
/// Rules skip these: tests may use wall clocks, `unwrap` and unordered
/// iteration freely — the determinism contract binds protocol code only.
pub fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip past this attribute and any further `#[...]` attributes,
            // then expect `mod <name> {` and span to the matching brace.
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attr(tokens, j);
            }
            if j + 2 < tokens.len()
                && tokens[j].is_ident("mod")
                && tokens[j + 1].kind == TokenKind::Ident
                && tokens[j + 2].is_punct("{")
            {
                let open = j + 2;
                let mut depth = 0usize;
                let mut k = open;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        depth += 1;
                    } else if tokens[k].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                spans.push((i, k + 1));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    // `#` `[` `cfg` `(` `test` `)` `]`
    tokens.len() > i + 6
        && tokens[i].is_punct("#")
        && tokens[i + 1].is_punct("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(")")
        && tokens[i + 6].is_punct("]")
}

/// Returns the token index just past the attribute starting at `i` (which
/// must point at `#`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| i >= a && i < b)
}

/// Applies one token rule to a file. `path` is workspace-relative; the
/// caller has already checked the rule applies to this crate and that the
/// path is not allowlisted.
pub fn apply_token_rule(
    rule: &'static str,
    policy: &RulePolicy,
    path: &str,
    tokens: &[Token],
) -> Vec<Finding> {
    let spans = test_spans(tokens);
    let mut findings = Vec::new();
    let mut emit = |line: usize, message: String| {
        findings.push(Finding::new(rule, path, line, message));
    };
    match rule {
        "ND001" => {
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                if t.is_ident("Instant") || t.is_ident("SystemTime") {
                    emit(
                        t.line,
                        format!(
                            "wall-clock API `{}` in protocol code — {}",
                            t.text, policy.description
                        ),
                    );
                }
            }
        }
        "ND002" => {
            const BANNED: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                if BANNED.iter().any(|b| t.is_ident(b)) {
                    emit(
                        t.line,
                        format!("ambient randomness `{}` — {}", t.text, policy.description),
                    );
                }
            }
        }
        "ND003" => {
            for site in hash_iteration_sites(tokens) {
                if in_spans(&spans, site.index) {
                    continue;
                }
                emit(site.line, format!("{} — {}", site.what, policy.description));
            }
        }
        "PH001" => {
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                let dotted = i > 0 && tokens[i - 1].is_punct(".");
                let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                let banged = tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
                if dotted && called && (t.is_ident("unwrap") || t.is_ident("expect")) {
                    emit(
                        t.line,
                        format!("`.{}()` in protocol code — {}", t.text, policy.description),
                    );
                }
                if banged
                    && ["panic", "unreachable", "todo", "unimplemented"]
                        .iter()
                        .any(|m| t.is_ident(m))
                {
                    emit(
                        t.line,
                        format!("`{}!` in protocol code — {}", t.text, policy.description),
                    );
                }
            }
        }
        "AR001" => {
            let types = policy
                .lists
                .get("types")
                .cloned()
                .unwrap_or_else(|| vec!["SimTime".to_string()]);
            let idents = policy.lists.get("idents").cloned().unwrap_or_default();
            for site in unchecked_arith_sites(tokens, &types, &idents) {
                if in_spans(&spans, site.index) {
                    continue;
                }
                emit(site.line, format!("{} — {}", site.what, policy.description));
            }
        }
        "FD001" => {
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                if !(t.is_punct("==") || t.is_punct("!=")) {
                    continue;
                }
                let prev_float = i > 0 && is_float_token(&tokens[i - 1]);
                // Allow a unary minus before the literal on the right.
                let next = if tokens.get(i + 1).is_some_and(|n| n.is_punct("-")) {
                    tokens.get(i + 2)
                } else {
                    tokens.get(i + 1)
                };
                let next_float = next.is_some_and(is_float_token);
                if prev_float || next_float {
                    emit(
                        t.line,
                        format!("float compared with `{}` — {}", t.text, policy.description),
                    );
                }
            }
        }
        other => return unreachable_rule(other),
    }
    findings
}

// A rule id outside TOKEN_RULES is a programming error in the scanner, not
// a data error — but the audit must never panic, so surface it as text.
fn unreachable_rule(rule: &str) -> Vec<Finding> {
    vec![Finding::new(
        "AUDIT",
        "",
        0,
        format!("internal error: unknown token rule id `{rule}`"),
    )]
}

fn is_float_token(t: &Token) -> bool {
    matches!(t.kind, TokenKind::Number { is_float: true })
}

/// One matched site within a token stream: shared currency between the
/// file-scoped rules here and the reachability-scoped rules in
/// [`crate::taint`], which filters sites by function-body span instead of
/// by test span.
#[derive(Clone, Debug)]
pub struct Site {
    /// Token index of the match (for span filtering).
    pub index: usize,
    /// 1-based line.
    pub line: usize,
    /// What matched, message-ready (`"iteration `.keys()` over ..."`).
    pub what: String,
}

/// ND003/ND103 detector: iteration over names declared with a
/// `HashMap`/`HashSet` type (method iteration and `for` loops).
pub fn hash_iteration_sites(tokens: &[Token]) -> Vec<Site> {
    let names = hash_typed_names(tokens);
    const ITERS: [&str; 8] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_keys",
        "into_values",
    ];
    let mut sites = Vec::new();
    for i in 0..tokens.len() {
        // `name . method (` where `name` has a hash-container type.
        if i + 3 < tokens.len()
            && tokens[i].kind == TokenKind::Ident
            && tokens[i + 1].is_punct(".")
            && tokens[i + 2].kind == TokenKind::Ident
            && tokens[i + 3].is_punct("(")
            && names.iter().any(|n| n == &tokens[i].text)
            && ITERS.iter().any(|m| tokens[i + 2].is_ident(m))
        {
            sites.push(Site {
                index: i,
                line: tokens[i].line,
                what: format!(
                    "iteration `.{}()` over hash container `{}`",
                    tokens[i + 2].text,
                    tokens[i].text
                ),
            });
        }
        // `for <pat> in [&][mut] name {` over a hash container.
        if tokens[i].is_ident("for") {
            if let Some(j) = find_for_target(tokens, i) {
                if names.iter().any(|n| n == &tokens[j].text) {
                    sites.push(Site {
                        index: j,
                        line: tokens[j].line,
                        what: format!("`for` loop over hash container `{}`", tokens[j].text),
                    });
                }
            }
        }
    }
    sites
}

/// AR001 detector: bare `+`/`-`/`*` where either operand is a name with a
/// guarded type ascription (`types`, e.g. `SimTime`) or a guarded counter
/// name (`idents`, e.g. `epoch`). Guarded arithmetic must go through the
/// `saturating_*`/`checked_*` methods, which carry no bare operator.
pub fn unchecked_arith_sites(tokens: &[Token], types: &[String], idents: &[String]) -> Vec<Site> {
    let mut guarded = typed_names(tokens, types);
    for extra in idents {
        if !guarded.iter().any(|g| g == extra) {
            guarded.push(extra.clone());
        }
    }
    if guarded.is_empty() {
        return Vec::new();
    }
    let mut sites = Vec::new();
    for i in 1..tokens.len() {
        let t = &tokens[i];
        if !(t.is_punct("+") || t.is_punct("-") || t.is_punct("*")) {
            continue;
        }
        // Binary position only: the left neighbour must be a value end
        // (name, literal, `)`/`]`), never `=`/`(`/`,`/operator — that
        // excludes unary minus, deref `*p` and `&`-of.
        let prev = &tokens[i - 1];
        let value_end = prev.kind == TokenKind::Ident
            || matches!(prev.kind, TokenKind::Number { .. })
            || prev.is_punct(")")
            || prev.is_punct("]");
        if !value_end {
            continue;
        }
        let left_hit = prev.kind == TokenKind::Ident && guarded.iter().any(|g| g == &prev.text);
        let right_hit = tokens
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Ident && guarded.iter().any(|g| g == &n.text));
        if left_hit || right_hit {
            let name = if left_hit {
                &prev.text
            } else {
                &tokens[i + 1].text
            };
            sites.push(Site {
                index: i,
                line: t.line,
                what: format!(
                    "unchecked `{}` on guarded counter `{}` (use `saturating_*`/`checked_*`)",
                    t.text, name
                ),
            });
        }
    }
    sites
}

/// Names declared (via `:` ascription or `let ... = Type...`) with any of
/// the given type names — the generic engine behind [`hash_typed_names`]
/// and the AR001 guarded-type tracking.
fn typed_names(tokens: &[Token], types: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |s: &str| {
        if !names.iter().any(|n| n == s) {
            names.push(s.to_string());
        }
    };
    let is_type = |t: &Token| t.kind == TokenKind::Ident && types.iter().any(|y| y == &t.text);
    for i in 0..tokens.len() {
        // `name : [path ::] Type` — fields, params, ascriptions.
        if tokens[i].kind == TokenKind::Ident && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
        {
            let mut j = i + 2;
            let mut hops = 0;
            while j < tokens.len() && hops < 8 {
                if is_type(&tokens[j]) {
                    push(&tokens[i].text);
                    break;
                }
                // Only walk through path segments (`std :: collections ::`).
                if tokens[j].kind == TokenKind::Ident || tokens[j].is_punct("::") {
                    j += 1;
                    hops += 1;
                } else {
                    break;
                }
            }
        }
        // `let [mut] name = ... Type ... ;` (constructor calls).
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j) else { continue };
            if name.kind != TokenKind::Ident {
                continue;
            }
            if !tokens.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                continue; // typed `let` handled by the `:` pattern above
            }
            // Only the initializer's top nesting level names the binding's
            // type (`let t = SimTime::from_nanos(x)`); a type mentioned
            // inside nested braces/parens (`let b = Block { at: SimTime::ZERO }`)
            // types a *field*, not the binding.
            let mut k = j + 2;
            let mut depth = 0i32;
            while k < tokens.len() {
                let t = &tokens[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(";") {
                    break;
                } else if depth == 0 && is_type(t) {
                    push(&name.text);
                    break;
                }
                k += 1;
            }
        }
    }
    names
}

/// Collects identifiers declared (as `let` bindings, fields or parameters)
/// with a `HashMap`/`HashSet` type, plus `HashMap::new()`-style bindings.
fn hash_typed_names(tokens: &[Token]) -> Vec<String> {
    typed_names(tokens, &["HashMap".to_string(), "HashSet".to_string()])
}

/// For a `for` token at `i`, finds the index of the loop-target identifier
/// when the target is a plain (possibly borrowed) name: `for p in &name {`.
fn find_for_target(tokens: &[Token], i: usize) -> Option<usize> {
    // Find `in` within a short window (patterns are usually small).
    let mut j = i + 1;
    let mut hops = 0;
    while j < tokens.len() && hops < 12 {
        if tokens[j].is_ident("in") {
            let mut k = j + 1;
            while k < tokens.len() && (tokens[k].is_punct("&") || tokens[k].is_ident("mut")) {
                k += 1;
            }
            let name = tokens.get(k)?;
            // Must be a bare name followed by `{` — method calls and
            // ranges are someone else's business.
            if name.kind == TokenKind::Ident && tokens.get(k + 1).is_some_and(|t| t.is_punct("{")) {
                return Some(k);
            }
            return None;
        }
        j += 1;
        hops += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::policy::RulePolicy;

    fn rule(desc: &str) -> RulePolicy {
        RulePolicy {
            description: desc.to_string(),
            ..RulePolicy::default()
        }
    }

    fn run(id: &'static str, src: &str) -> Vec<Finding> {
        apply_token_rule(id, &rule("policy says no"), "x.rs", &lex(src))
    }

    #[test]
    fn nd001_flags_instant_but_not_in_tests_or_strings() {
        let src = r#"
            use std::time::Instant;
            fn f() { let s = "Instant"; }
            #[cfg(test)]
            mod tests {
                use std::time::Instant;
            }
        "#;
        let f = run("ND001", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn nd002_flags_thread_rng() {
        let f = run("ND002", "fn f() { let mut r = rand::thread_rng(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("thread_rng"));
    }

    #[test]
    fn nd003_needs_a_hash_typed_name() {
        let src = "
            struct S { m: HashMap<u32, u32>, v: Vec<u32> }
            fn f(s: &S) {
                for x in s.v.iter() {}
                let total: u32 = s.m.values().sum();
            }
        ";
        let f = run("ND003", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("values"));
    }

    #[test]
    fn nd003_flags_for_loops_over_hash_sets() {
        let src = "
            fn f() {
                let mut seen = std::collections::HashSet::new();
                for s in &seen {}
                let v = vec![1];
                for s in &v {}
            }
        ";
        let f = run("ND003", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("seen"));
    }

    #[test]
    fn ph001_flags_unwrap_and_macros_outside_tests() {
        let src = "
            fn f(x: Option<u32>) -> u32 { x.unwrap() }
            fn g() { panic!(\"boom\"); }
            #[cfg(test)]
            mod tests {
                fn h(x: Option<u32>) -> u32 { x.expect(\"fine in tests\") }
            }
        ";
        let f = run("PH001", src);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn ph001_ignores_idents_that_merely_resemble() {
        // `unwrap_or` is fine; a field named `expect` without a call is fine.
        let f = run("PH001", "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fd001_flags_float_literal_comparison() {
        let f = run("FD001", "fn f(x: f64) -> bool { x == 0.5 || x != -1.5 }");
        assert_eq!(f.len(), 2, "{f:?}");
        let g = run("FD001", "fn f(x: u64) -> bool { x == 5 }");
        assert!(g.is_empty(), "{g:?}");
    }

    #[test]
    fn ar001_flags_bare_arithmetic_on_guarded_types() {
        let src = "
            fn f(now: SimTime, delta: u64) -> SimTime {
                let later = now + delta;
                later
            }
            fn g(now: SimTime, delta: u64) -> SimTime {
                now.saturating_add(delta)
            }
        ";
        let f = run("AR001", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains('+'), "{f:?}");
        assert!(f[0].message.contains("now"), "{f:?}");
    }

    #[test]
    fn ar001_tracks_policy_idents_and_skips_unary_contexts() {
        let mut pol = rule("no bare arith");
        pol.lists
            .insert("idents".to_string(), vec!["epoch".to_string()]);
        pol.lists.insert("types".to_string(), Vec::new());
        let src = "
            fn f(epoch: u64) -> u64 { epoch + 1 }
            fn g(epoch: u64) -> u64 { epoch.saturating_add(1) }
            fn h(p: &u64) -> u64 { *p }
            fn neg(x: i64) -> i64 { -x }
        ";
        let f = apply_token_rule("AR001", &pol, "x.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn ar001_is_silent_without_guarded_operands() {
        let f = run("AR001", "fn f(a: u64, b: u64) -> u64 { a + b * 2 }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn finding_display_renders_call_chain_hops() {
        let mut f = Finding::new("ND101", "crates/x/src/a.rs", 7, "wall clock".to_string());
        f.chain = vec![
            "cshard_x::a::Driver::on_event (crates/x/src/a.rs:3)".to_string(),
            "cshard_x::a::helper (called at crates/x/src/a.rs:5)".to_string(),
        ];
        let s = f.to_string();
        assert!(
            s.starts_with("crates/x/src/a.rs:7: ND101 wall clock\n"),
            "{s}"
        );
        assert!(s.contains("\n    cshard_x::a::Driver::on_event"), "{s}");
        assert!(s.contains("\n    -> cshard_x::a::helper"), "{s}");
    }

    #[test]
    fn test_spans_cover_nested_braces() {
        let toks = lex("#[cfg(test)] mod t { fn a() { if x { } } } fn tail() {}");
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let tail_idx = toks.iter().position(|t| t.is_ident("tail")).unwrap();
        assert!(!in_spans(&spans, tail_idx));
    }
}
