//! The audit rules, applied to a lexed token stream.
//!
//! Every rule is identified by a stable id (`ND001`, ...), is configured
//! by an entry in `policy.toml`, and reports findings as `file:line`
//! diagnostics. The rules are token-level heuristics — deliberately
//! conservative, so a finding is near-certainly real; the `allow` lists in
//! the policy handle the residue, each entry with a comment saying why.
//! See DESIGN.md "Determinism invariants" for the rationale per rule.

use crate::lexer::{Token, TokenKind};
use crate::policy::RulePolicy;
use std::fmt;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`ND001`, `PH001`, ...).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Ids of every token-level rule, in reporting order. `AH001` is file-level
/// (crate headers) and lives in [`crate::scan`].
pub const TOKEN_RULES: [&str; 5] = ["ND001", "ND002", "ND003", "PH001", "FD001"];

/// Token index spans (half-open) covered by `#[cfg(test)] mod ... { }`.
///
/// Rules skip these: tests may use wall clocks, `unwrap` and unordered
/// iteration freely — the determinism contract binds protocol code only.
pub fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip past this attribute and any further `#[...]` attributes,
            // then expect `mod <name> {` and span to the matching brace.
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attr(tokens, j);
            }
            if j + 2 < tokens.len()
                && tokens[j].is_ident("mod")
                && tokens[j + 1].kind == TokenKind::Ident
                && tokens[j + 2].is_punct("{")
            {
                let open = j + 2;
                let mut depth = 0usize;
                let mut k = open;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        depth += 1;
                    } else if tokens[k].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                spans.push((i, k + 1));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    // `#` `[` `cfg` `(` `test` `)` `]`
    tokens.len() > i + 6
        && tokens[i].is_punct("#")
        && tokens[i + 1].is_punct("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(")")
        && tokens[i + 6].is_punct("]")
}

/// Returns the token index just past the attribute starting at `i` (which
/// must point at `#`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| i >= a && i < b)
}

/// Applies one token rule to a file. `path` is workspace-relative; the
/// caller has already checked the rule applies to this crate and that the
/// path is not allowlisted.
pub fn apply_token_rule(
    rule: &'static str,
    policy: &RulePolicy,
    path: &str,
    tokens: &[Token],
) -> Vec<Finding> {
    let spans = test_spans(tokens);
    let mut findings = Vec::new();
    let mut emit = |line: usize, message: String| {
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line,
            message,
        })
    };
    match rule {
        "ND001" => {
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                if t.is_ident("Instant") || t.is_ident("SystemTime") {
                    emit(
                        t.line,
                        format!(
                            "wall-clock API `{}` in protocol code — {}",
                            t.text, policy.description
                        ),
                    );
                }
            }
        }
        "ND002" => {
            const BANNED: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                if BANNED.iter().any(|b| t.is_ident(b)) {
                    emit(
                        t.line,
                        format!("ambient randomness `{}` — {}", t.text, policy.description),
                    );
                }
            }
        }
        "ND003" => {
            let names = hash_typed_names(tokens);
            const ITERS: [&str; 8] = [
                "iter",
                "iter_mut",
                "keys",
                "values",
                "values_mut",
                "drain",
                "into_keys",
                "into_values",
            ];
            for i in 0..tokens.len() {
                if in_spans(&spans, i) {
                    continue;
                }
                // `name . method (` where `name` has a hash-container type.
                if i + 3 < tokens.len()
                    && tokens[i].kind == TokenKind::Ident
                    && tokens[i + 1].is_punct(".")
                    && tokens[i + 2].kind == TokenKind::Ident
                    && tokens[i + 3].is_punct("(")
                    && names.iter().any(|n| n == &tokens[i].text)
                    && ITERS.iter().any(|m| tokens[i + 2].is_ident(m))
                {
                    emit(
                        tokens[i].line,
                        format!(
                            "iteration `.{}()` over hash container `{}` — {}",
                            tokens[i + 2].text,
                            tokens[i].text,
                            policy.description
                        ),
                    );
                }
                // `for <pat> in [&][mut] name {` over a hash container.
                if tokens[i].is_ident("for") {
                    if let Some(j) = find_for_target(tokens, i) {
                        if names.iter().any(|n| n == &tokens[j].text) {
                            emit(
                                tokens[j].line,
                                format!(
                                    "`for` loop over hash container `{}` — {}",
                                    tokens[j].text, policy.description
                                ),
                            );
                        }
                    }
                }
            }
        }
        "PH001" => {
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                let dotted = i > 0 && tokens[i - 1].is_punct(".");
                let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                let banged = tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
                if dotted && called && (t.is_ident("unwrap") || t.is_ident("expect")) {
                    emit(
                        t.line,
                        format!("`.{}()` in protocol code — {}", t.text, policy.description),
                    );
                }
                if banged
                    && ["panic", "unreachable", "todo", "unimplemented"]
                        .iter()
                        .any(|m| t.is_ident(m))
                {
                    emit(
                        t.line,
                        format!("`{}!` in protocol code — {}", t.text, policy.description),
                    );
                }
            }
        }
        "FD001" => {
            for (i, t) in tokens.iter().enumerate() {
                if in_spans(&spans, i) {
                    continue;
                }
                if !(t.is_punct("==") || t.is_punct("!=")) {
                    continue;
                }
                let prev_float = i > 0 && is_float_token(&tokens[i - 1]);
                // Allow a unary minus before the literal on the right.
                let next = if tokens.get(i + 1).is_some_and(|n| n.is_punct("-")) {
                    tokens.get(i + 2)
                } else {
                    tokens.get(i + 1)
                };
                let next_float = next.is_some_and(is_float_token);
                if prev_float || next_float {
                    emit(
                        t.line,
                        format!("float compared with `{}` — {}", t.text, policy.description),
                    );
                }
            }
        }
        other => return unreachable_rule(other),
    }
    findings
}

// A rule id outside TOKEN_RULES is a programming error in the scanner, not
// a data error — but the audit must never panic, so surface it as text.
fn unreachable_rule(rule: &str) -> Vec<Finding> {
    vec![Finding {
        rule: "AUDIT",
        path: String::new(),
        line: 0,
        message: format!("internal error: unknown token rule id `{rule}`"),
    }]
}

fn is_float_token(t: &Token) -> bool {
    matches!(t.kind, TokenKind::Number { is_float: true })
}

/// Collects identifiers declared (as `let` bindings, fields or parameters)
/// with a `HashMap`/`HashSet` type, plus `HashMap::new()`-style bindings.
fn hash_typed_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |s: &str| {
        if !names.iter().any(|n| n == s) {
            names.push(s.to_string());
        }
    };
    for i in 0..tokens.len() {
        // `name : [path ::] HashMap/HashSet` — fields, params, ascriptions.
        if tokens[i].kind == TokenKind::Ident && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
        {
            let mut j = i + 2;
            let mut hops = 0;
            while j < tokens.len() && hops < 8 {
                if tokens[j].is_ident("HashMap") || tokens[j].is_ident("HashSet") {
                    push(&tokens[i].text);
                    break;
                }
                // Only walk through path segments (`std :: collections ::`).
                if tokens[j].kind == TokenKind::Ident || tokens[j].is_punct("::") {
                    j += 1;
                    hops += 1;
                } else {
                    break;
                }
            }
        }
        // `let [mut] name = ... HashMap/HashSet ... ;` (constructor calls).
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j) else { continue };
            if name.kind != TokenKind::Ident {
                continue;
            }
            if !tokens.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                continue; // typed `let` handled by the `:` pattern above
            }
            let mut k = j + 2;
            while k < tokens.len() && !tokens[k].is_punct(";") {
                if tokens[k].is_ident("HashMap") || tokens[k].is_ident("HashSet") {
                    push(&name.text);
                    break;
                }
                k += 1;
            }
        }
    }
    names
}

/// For a `for` token at `i`, finds the index of the loop-target identifier
/// when the target is a plain (possibly borrowed) name: `for p in &name {`.
fn find_for_target(tokens: &[Token], i: usize) -> Option<usize> {
    // Find `in` within a short window (patterns are usually small).
    let mut j = i + 1;
    let mut hops = 0;
    while j < tokens.len() && hops < 12 {
        if tokens[j].is_ident("in") {
            let mut k = j + 1;
            while k < tokens.len() && (tokens[k].is_punct("&") || tokens[k].is_ident("mut")) {
                k += 1;
            }
            let name = tokens.get(k)?;
            // Must be a bare name followed by `{` — method calls and
            // ranges are someone else's business.
            if name.kind == TokenKind::Ident && tokens.get(k + 1).is_some_and(|t| t.is_punct("{")) {
                return Some(k);
            }
            return None;
        }
        j += 1;
        hops += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::policy::RulePolicy;

    fn rule(desc: &str) -> RulePolicy {
        RulePolicy {
            description: desc.to_string(),
            ..RulePolicy::default()
        }
    }

    fn run(id: &'static str, src: &str) -> Vec<Finding> {
        apply_token_rule(id, &rule("policy says no"), "x.rs", &lex(src))
    }

    #[test]
    fn nd001_flags_instant_but_not_in_tests_or_strings() {
        let src = r#"
            use std::time::Instant;
            fn f() { let s = "Instant"; }
            #[cfg(test)]
            mod tests {
                use std::time::Instant;
            }
        "#;
        let f = run("ND001", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn nd002_flags_thread_rng() {
        let f = run("ND002", "fn f() { let mut r = rand::thread_rng(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("thread_rng"));
    }

    #[test]
    fn nd003_needs_a_hash_typed_name() {
        let src = "
            struct S { m: HashMap<u32, u32>, v: Vec<u32> }
            fn f(s: &S) {
                for x in s.v.iter() {}
                let total: u32 = s.m.values().sum();
            }
        ";
        let f = run("ND003", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("values"));
    }

    #[test]
    fn nd003_flags_for_loops_over_hash_sets() {
        let src = "
            fn f() {
                let mut seen = std::collections::HashSet::new();
                for s in &seen {}
                let v = vec![1];
                for s in &v {}
            }
        ";
        let f = run("ND003", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("seen"));
    }

    #[test]
    fn ph001_flags_unwrap_and_macros_outside_tests() {
        let src = "
            fn f(x: Option<u32>) -> u32 { x.unwrap() }
            fn g() { panic!(\"boom\"); }
            #[cfg(test)]
            mod tests {
                fn h(x: Option<u32>) -> u32 { x.expect(\"fine in tests\") }
            }
        ";
        let f = run("PH001", src);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn ph001_ignores_idents_that_merely_resemble() {
        // `unwrap_or` is fine; a field named `expect` without a call is fine.
        let f = run("PH001", "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fd001_flags_float_literal_comparison() {
        let f = run("FD001", "fn f(x: f64) -> bool { x == 0.5 || x != -1.5 }");
        assert_eq!(f.len(), 2, "{f:?}");
        let g = run("FD001", "fn f(x: u64) -> bool { x == 5 }");
        assert!(g.is_empty(), "{g:?}");
    }

    #[test]
    fn test_spans_cover_nested_braces() {
        let toks = lex("#[cfg(test)] mod t { fn a() { if x { } } } fn tail() {}");
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let tail_idx = toks.iter().position(|t| t.is_ident("tail")).unwrap();
        assert!(!in_spans(&spans, tail_idx));
    }
}
