//! `cshard-audit` — workspace determinism & safety lints.
//!
//! The paper's parameter-unification scheme (Sec. IV-C) requires every
//! miner to replay Algorithms 1–3 and obtain byte-identical results, so
//! any nondeterministic API reaching protocol code is a correctness bug.
//! PR 1 and PR 2 made that contract real (PRF-seeded per-shard RNG
//! streams, golden fingerprints, wall-clock reads confined to the
//! `Runtime` harness); this crate enforces it at the source level, as a
//! CI gate that fails with `file:line` diagnostics.
//!
//! The analysis is token-level and multi-pass: a hand-rolled lexer
//! ([`lexer`]) feeds a workspace symbol table ([`symbols`]), a name+arity
//! call graph ([`callgraph`]), and a source→sink reachability pass
//! ([`taint`]) on top of the per-line matchers ([`rules`]), all
//! configured by the `policy.toml` at the workspace root ([`policy`]);
//! [`scan`] walks the crates the policy lists and [`report`] renders the
//! stable `AUDIT_report.json` plus the baseline gate. There is no `syn`
//! here on purpose — the workspace builds fully offline from an in-tree
//! dependency set, and the rules only need token structure, not a full
//! AST.
//!
//! Line-scoped rules (`0xx` — see DESIGN.md "Determinism invariants"):
//!
//! | id    | what it forbids                                             |
//! |-------|-------------------------------------------------------------|
//! | ND001 | wall-clock APIs (`Instant`, `SystemTime`) in protocol code  |
//! | ND002 | ambient randomness (`thread_rng`, `from_entropy`, `OsRng`)  |
//! | ND003 | iteration over `HashMap`/`HashSet` (unordered => replay-unsafe) |
//! | PH001 | `unwrap`/`expect`/`panic!`-class exits in driver/event code |
//! | FD001 | `==`/`!=` against float literals (tolerance helpers instead) |
//! | AR001 | bare `+`/`-`/`*` on `SimTime`/epoch counters (overflow)     |
//! | AH001 | missing required lint headers in protocol crate roots       |
//!
//! Reachability-scoped rules (`1xx` — a source counts only when a
//! `[callgraph] sinks` root reaches it; findings carry the full
//! source→…→sink call chain with `file:line` per hop):
//!
//! | id    | what it forbids on sink-reachable paths                     |
//! |-------|-------------------------------------------------------------|
//! | ND101 | wall-clock reads any number of helper calls below a sink    |
//! | ND102 | ambient entropy below a sink                                |
//! | ND103 | hash-order iteration below a sink                           |
//! | PH101 | panic-class exits below a sink (class list in the policy)   |
//! | CL001 | lossy `as` narrowing casts below a sink                     |
//! | DP001 | calls to `#[deprecated]` workspace items (reachability-free)|
//!
//! `#[cfg(test)] mod` bodies are exempt everywhere; residual exceptions
//! live in the policy's `allow` lists, each with a comment saying why.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod taint;

pub use policy::{Policy, PolicyError};
pub use rules::Finding;
pub use scan::{scan_workspace, uncovered_crates, ScanReport};
