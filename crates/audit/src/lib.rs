//! `cshard-audit` — workspace determinism & safety lints.
//!
//! The paper's parameter-unification scheme (Sec. IV-C) requires every
//! miner to replay Algorithms 1–3 and obtain byte-identical results, so
//! any nondeterministic API reaching protocol code is a correctness bug.
//! PR 1 and PR 2 made that contract real (PRF-seeded per-shard RNG
//! streams, golden fingerprints, wall-clock reads confined to the
//! `Runtime` harness); this crate enforces it at the source level, as a
//! CI gate that fails with `file:line` diagnostics.
//!
//! The pass is a token-level static analysis: a hand-rolled lexer
//! ([`lexer`]) feeds per-rule matchers ([`rules`]) configured by the
//! `policy.toml` at the workspace root ([`policy`]); [`scan`] walks the
//! crates the policy lists. There is no `syn` here on purpose — the
//! workspace builds fully offline from an in-tree dependency set, and the
//! six rules only need token structure, not a full AST.
//!
//! Rules (see DESIGN.md "Determinism invariants" for the full rationale):
//!
//! | id    | what it forbids                                             |
//! |-------|-------------------------------------------------------------|
//! | ND001 | wall-clock APIs (`Instant`, `SystemTime`) in protocol code  |
//! | ND002 | ambient randomness (`thread_rng`, `from_entropy`, `OsRng`)  |
//! | ND003 | iteration over `HashMap`/`HashSet` (unordered => replay-unsafe) |
//! | PH001 | `unwrap`/`expect`/`panic!`-class exits in driver/event code |
//! | FD001 | `==`/`!=` against float literals (tolerance helpers instead) |
//! | AH001 | missing required lint headers in protocol crate roots       |
//!
//! `#[cfg(test)] mod` bodies are exempt everywhere; residual exceptions
//! live in the policy's `allow` lists, each with a comment saying why.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod policy;
pub mod rules;
pub mod scan;

pub use policy::{Policy, PolicyError};
pub use rules::Finding;
pub use scan::{scan_workspace, uncovered_crates, ScanReport};
