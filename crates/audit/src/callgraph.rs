//! Pass 2 of the interprocedural analysis: the workspace call graph.
//!
//! For every function body in the symbol table, call sites are extracted
//! from the token stream (`helper(...)`, `recv.method(...)`,
//! `Type::assoc(...)`, turbofish variants) and resolved against the
//! table by **name + arity**, refined by the receiver/qualifier, the
//! caller's module and crate, and trait membership:
//!
//! 1. candidates = same name, same arity (receiver counted), non-test;
//! 2. `self.m(...)` keeps candidates owned by the caller's `impl` type;
//! 3. `Q::m(...)` keeps candidates whose owner, module tail or crate
//!    matches `Q`;
//! 4. a unique survivor resolves the edge; otherwise prefer the unique
//!    same-module, then same-crate candidate;
//! 5. candidates that are all impls of one trait method resolve as a
//!    fan-out edge to *every* impl (class-hierarchy style — sound
//!    over-approximation for taint reachability);
//! 6. what remains is **ambiguous** and must be settled by a
//!    `[callgraph] resolve` override in `policy.toml` (`"name/arity ->
//!    <id-suffix>|*|external"`) — the audit exits 2 with a hint
//!    otherwise, because an unresolved edge is a hole in the
//!    reachability argument.
//!
//! Calls that match no workspace symbol at all are *external*
//! (`std`/vendored) and only counted; the resolution ratio
//! (`resolved / (resolved + ambiguous)`, reported per-mille) is part of
//! the JSON report so coverage regressions fail the baseline gate.

use crate::lexer::TokenKind;
use crate::policy::{CallGraphPolicy, ResolveTarget};
use crate::symbols::{count_params, FileTokens, SymbolTable};

/// One resolved call edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Callee index into [`SymbolTable::fns`].
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: usize,
}

/// A call the resolver could not settle: multiple unrelated workspace
/// candidates share the name and arity. Reported as a setup error.
#[derive(Clone, Debug)]
pub struct AmbiguousCall {
    /// Workspace-relative path of the call site.
    pub path: String,
    /// 1-based line of the call site.
    pub line: usize,
    /// The called name.
    pub name: String,
    /// The call's arity (receiver counted for method calls).
    pub arity: usize,
    /// Display ids of the competing candidates.
    pub candidates: Vec<String>,
}

/// Aggregate resolution statistics, reported in `AUDIT_report.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Function definitions in the symbol table (non-test, with a body).
    pub functions: usize,
    /// Resolved caller→callee edges (fan-outs count each target).
    pub edges: usize,
    /// Call sites examined.
    pub calls_total: usize,
    /// Call sites resolved to at least one workspace definition.
    pub calls_resolved: usize,
    /// Call sites matching no workspace symbol (std/vendored).
    pub calls_external: usize,
    /// Call sites needing a policy override that have none.
    pub calls_ambiguous: usize,
}

impl GraphStats {
    /// `resolved / (resolved + ambiguous)`, in per-mille (deterministic
    /// integer — no float formatting in the stable report). External
    /// calls are excluded: they are out of scope, not unresolved.
    pub fn resolution_permille(&self) -> u64 {
        let in_scope = self.calls_resolved + self.calls_ambiguous;
        if in_scope == 0 {
            return 1000;
        }
        (self.calls_resolved as u64 * 1000) / in_scope as u64
    }
}

/// The workspace call graph over a [`SymbolTable`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per function index, sorted by (callee, line).
    pub edges: Vec<Vec<Edge>>,
    /// Calls needing a `[callgraph] resolve` override.
    pub ambiguous: Vec<AmbiguousCall>,
    /// Resolution statistics.
    pub stats: GraphStats,
}

impl CallGraph {
    /// Builds the graph: extracts and resolves every call site in every
    /// non-test function body.
    pub fn build(
        files: &[FileTokens],
        symbols: &SymbolTable,
        policy: &CallGraphPolicy,
    ) -> CallGraph {
        let mut graph = CallGraph {
            edges: vec![Vec::new(); symbols.fns.len()],
            ..CallGraph::default()
        };
        graph.stats.functions = symbols
            .fns
            .iter()
            .filter(|d| d.body.is_some() && !d.is_test)
            .count();
        for (caller_idx, def) in symbols.fns.iter().enumerate() {
            let Some((start, end)) = def.body else {
                continue;
            };
            if def.is_test {
                continue;
            }
            let ft = &files[def.file];
            for call in extract_calls(ft, start, end) {
                graph.stats.calls_total += 1;
                match resolve(&call, caller_idx, symbols, policy) {
                    Resolution::Edges(targets) => {
                        graph.stats.calls_resolved += 1;
                        for t in targets {
                            graph.edges[caller_idx].push(Edge {
                                callee: t,
                                line: call.line,
                            });
                        }
                    }
                    Resolution::External => graph.stats.calls_external += 1,
                    Resolution::Ambiguous(candidates) => {
                        graph.stats.calls_ambiguous += 1;
                        graph.ambiguous.push(AmbiguousCall {
                            path: def.path.clone(),
                            line: call.line,
                            name: call.name.clone(),
                            arity: call.arity,
                            candidates: candidates.iter().map(|&c| symbols.fns[c].id()).collect(),
                        });
                    }
                }
            }
        }
        for edges in &mut graph.edges {
            edges.sort_by_key(|e| (e.callee, e.line));
            edges.dedup();
        }
        graph.stats.edges = graph.edges.iter().map(Vec::len).sum();
        graph
            .ambiguous
            .sort_by(|a, b| (&a.path, a.line, &a.name).cmp(&(&b.path, b.line, &b.name)));
        graph
    }

    /// Function indices with a resolved edge to any of `targets`.
    pub fn callers_of(&self, targets: &[usize]) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, es)| es.iter().any(|e| targets.contains(&e.callee)))
            .map(|(i, _)| i)
            .collect()
    }
}

/// One extracted call site, before resolution.
#[derive(Clone, Debug)]
struct CallSite {
    name: String,
    /// `Some("self")` for `self.m()`, `Some("Q")` for `Q::m()`.
    qualifier: Option<String>,
    /// Receiver counted: `x.m(a)` has arity 2.
    arity: usize,
    line: usize,
}

/// Rust keywords that can directly precede `(` in expression position.
const CALLISH_KEYWORDS: [&str; 12] = [
    "if", "while", "match", "return", "for", "in", "loop", "move", "break", "continue", "as",
    "await",
];

fn extract_calls(ft: &FileTokens, start: usize, end: usize) -> Vec<CallSite> {
    let tokens = &ft.tokens;
    let mut calls = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || CALLISH_KEYWORDS.iter().any(|k| t.is_ident(k)) {
            i += 1;
            continue;
        }
        // The argument list opens either directly (`name(`) or after a
        // turbofish (`name::<T>(`).
        let open = if tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            Some(i + 1)
        } else if tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct("<"))
        {
            skip_angles_fwd(tokens, i + 2)
                .filter(|&j| tokens.get(j).is_some_and(|n| n.is_punct("(")))
        } else {
            None
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // Definitions (`fn name(`) are not calls; macro names never reach
        // here (`name!` has no direct `(`), but macro *arguments* are
        // still walked for calls within.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some((args, _)) = count_params(tokens, open) else {
            i += 1;
            continue;
        };
        let is_method = i > 0 && tokens[i - 1].is_punct(".");
        let qualifier = if is_method {
            // `self.m(...)` — but not `x.self...`; `self` is a keyword.
            (i >= 2 && tokens[i - 2].is_ident("self") && !(i >= 3 && tokens[i - 3].is_punct(".")))
                .then(|| "self".to_string())
        } else if i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].kind == TokenKind::Ident {
            Some(tokens[i - 2].text.clone())
        } else {
            None
        };
        calls.push(CallSite {
            name: t.text.clone(),
            qualifier,
            arity: args + usize::from(is_method),
            line: t.line,
        });
        i += 1;
    }
    calls
}

fn skip_angles_fwd(tokens: &[crate::lexer::Token], mut j: usize) -> Option<usize> {
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("<") {
            depth += 1;
        } else if tokens[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if tokens[j].is_punct(";") || tokens[j].is_punct("{") {
            return None;
        }
        j += 1;
    }
    None
}

enum Resolution {
    Edges(Vec<usize>),
    External,
    Ambiguous(Vec<usize>),
}

fn resolve(
    call: &CallSite,
    caller_idx: usize,
    symbols: &SymbolTable,
    policy: &CallGraphPolicy,
) -> Resolution {
    let Some(all) = symbols.by_name.get(&call.name) else {
        return Resolution::External;
    };
    let caller = &symbols.fns[caller_idx];
    let mut c: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| !symbols.fns[i].is_test && symbols.fns[i].arity == call.arity)
        .collect();
    if c.is_empty() {
        return Resolution::External;
    }
    // Receiver/qualifier refinement. `Self::m(...)` is the caller's own
    // impl type, same as a `self.m(...)` receiver.
    match call.qualifier.as_deref() {
        Some("self") | Some("Self") => {
            if let Some(owner) = &caller.owner {
                let owned: Vec<usize> = c
                    .iter()
                    .copied()
                    .filter(|&i| symbols.fns[i].owner.as_ref() == Some(owner))
                    .collect();
                if !owned.is_empty() {
                    c = owned;
                }
            }
        }
        Some(q) => {
            let crate_of = q.strip_prefix("cshard_").unwrap_or(q);
            let qualified: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&i| {
                    let d = &symbols.fns[i];
                    d.owner.as_deref() == Some(q)
                        || d.module == q
                        || d.module.ends_with(&format!("::{q}"))
                        || d.krate == crate_of
                })
                .collect();
            if qualified.is_empty() {
                // An explicit qualifier naming no workspace owner, module
                // or crate is a std/vendored path (`Vec::new`,
                // `BTreeMap::new`) that happens to share a method name
                // with workspace types.
                return Resolution::External;
            }
            c = qualified;
        }
        None => {}
    }
    let bodied = |v: &[usize]| -> Vec<usize> {
        v.iter()
            .copied()
            .filter(|&i| symbols.fns[i].body.is_some())
            .collect()
    };
    if c.len() == 1 {
        let b = bodied(&c);
        // A lone trait declaration fans out to that trait's impls.
        if b.is_empty() {
            if let Some(tn) = &symbols.fns[c[0]].trait_name {
                let impls = symbols.trait_impls(tn, &call.name);
                if !impls.is_empty() {
                    return Resolution::Edges(impls);
                }
            }
            return Resolution::External;
        }
        return Resolution::Edges(b);
    }
    // Prefer the caller's own module, then crate.
    let same_module: Vec<usize> = c
        .iter()
        .copied()
        .filter(|&i| symbols.fns[i].krate == caller.krate && symbols.fns[i].module == caller.module)
        .collect();
    if same_module.len() == 1 && symbols.fns[same_module[0]].body.is_some() {
        return Resolution::Edges(same_module);
    }
    let same_crate: Vec<usize> = c
        .iter()
        .copied()
        .filter(|&i| symbols.fns[i].krate == caller.krate)
        .collect();
    if same_crate.len() == 1 && symbols.fns[same_crate[0]].body.is_some() {
        return Resolution::Edges(same_crate);
    }
    // Trait fan-out: every candidate belongs to one trait method.
    let traits: Vec<&str> = c
        .iter()
        .filter_map(|&i| symbols.fns[i].trait_name.as_deref())
        .collect();
    if traits.len() == c.len() {
        let first = traits[0];
        if traits.iter().all(|&t| t == first) {
            let impls = bodied(&c);
            if !impls.is_empty() {
                return Resolution::Edges(impls);
            }
            return Resolution::External;
        }
    }
    // Policy override, or give up as ambiguous.
    match policy.resolve_for(&call.name, call.arity) {
        Some(ResolveTarget::External) => Resolution::External,
        Some(ResolveTarget::All) => {
            let b = bodied(&c);
            if b.is_empty() {
                Resolution::External
            } else {
                Resolution::Edges(b)
            }
        }
        Some(ResolveTarget::To(suffix)) => {
            let picked: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&i| symbols.fns[i].id().ends_with(suffix.as_str()))
                .filter(|&i| symbols.fns[i].body.is_some())
                .collect();
            if picked.is_empty() {
                Resolution::Ambiguous(c)
            } else {
                Resolution::Edges(picked)
            }
        }
        None => Resolution::Ambiguous(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CallGraphPolicy;

    fn build(srcs: &[(&str, &str, &str)]) -> (Vec<FileTokens>, SymbolTable, CallGraph) {
        let files: Vec<FileTokens> = srcs
            .iter()
            .map(|(k, rel, src)| FileTokens::new(k, rel, src))
            .collect();
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &symbols, &CallGraphPolicy::default());
        (files, symbols, graph)
    }

    fn edge_between(symbols: &SymbolTable, graph: &CallGraph, from: &str, to: &str) -> bool {
        let f = symbols.fns.iter().position(|d| d.name == from).unwrap();
        graph.edges[f]
            .iter()
            .any(|e| symbols.fns[e.callee].name == to)
    }

    #[test]
    fn free_call_resolves_across_files() {
        let (_, s, g) = build(&[
            (
                "core",
                "crates/core/src/a.rs",
                "pub fn entry() { helper(1); }",
            ),
            (
                "core",
                "crates/core/src/b.rs",
                "pub fn helper(x: u32) -> u32 { x }",
            ),
        ]);
        assert!(edge_between(&s, &g, "entry", "helper"));
        assert_eq!(g.stats.calls_resolved, 1);
        assert_eq!(g.stats.calls_ambiguous, 0);
    }

    #[test]
    fn self_method_prefers_own_impl() {
        let src = "
            struct A; struct B;
            impl A { fn go(&self) { self.helper(); } fn helper(&self) {} }
            impl B { fn helper(&self) {} }
        ";
        let (_, s, g) = build(&[("core", "crates/core/src/a.rs", src)]);
        let go = s.fns.iter().position(|d| d.name == "go").unwrap();
        assert_eq!(g.edges[go].len(), 1);
        let callee = &s.fns[g.edges[go][0].callee];
        assert_eq!(callee.owner.as_deref(), Some("A"));
    }

    #[test]
    fn trait_method_fans_out_to_every_impl() {
        let src = "
            trait Stage { fn run(&mut self, x: u32) -> u32; }
            struct S1; struct S2;
            impl Stage for S1 { fn run(&mut self, x: u32) -> u32 { x } }
            impl Stage for S2 { fn run(&mut self, x: u32) -> u32 { x + 1 } }
            fn driver(s: &mut dyn Stage) { s.run(7); }
        ";
        let (_, s, g) = build(&[("core", "crates/core/src/a.rs", src)]);
        let driver = s.fns.iter().position(|d| d.name == "driver").unwrap();
        assert_eq!(g.edges[driver].len(), 2, "{:?}", g.edges[driver]);
        assert_eq!(g.stats.calls_resolved, 1);
    }

    #[test]
    fn unrelated_same_name_same_arity_is_ambiguous() {
        let src = "
            mod x { pub fn go(a: u32) {} }
            mod y { pub fn go(a: u32) {} }
            fn entry() { go(1); }
        ";
        let (_, _, g) = build(&[("core", "crates/core/src/a.rs", src)]);
        assert_eq!(g.stats.calls_ambiguous, 1, "{:?}", g.ambiguous);
        assert_eq!(g.ambiguous[0].name, "go");
        assert_eq!(g.ambiguous[0].candidates.len(), 2);
    }

    #[test]
    fn policy_override_settles_ambiguity() {
        let src = "
            mod x { pub fn go(a: u32) {} }
            mod y { pub fn go(a: u32) {} }
            fn entry() { go(1); }
        ";
        let files = vec![FileTokens::new("core", "crates/core/src/a.rs", src)];
        let symbols = SymbolTable::build(&files);
        let mut policy = CallGraphPolicy::default();
        policy
            .resolve
            .insert(("go".into(), 1), ResolveTarget::To("x::go".into()));
        let g = CallGraph::build(&files, &symbols, &policy);
        assert_eq!(g.stats.calls_ambiguous, 0);
        assert_eq!(g.stats.calls_resolved, 1);
        let entry = symbols.fns.iter().position(|d| d.name == "entry").unwrap();
        assert_eq!(g.edges[entry].len(), 1);
        assert!(symbols.fns[g.edges[entry][0].callee]
            .id()
            .ends_with("x::go"));
    }

    #[test]
    fn std_calls_are_external_not_ambiguous() {
        let src = "fn entry(v: Vec<u32>) -> usize { v.len() }";
        let (_, _, g) = build(&[("core", "crates/core/src/a.rs", src)]);
        assert_eq!(g.stats.calls_external, 1);
        assert_eq!(g.stats.calls_ambiguous, 0);
    }

    #[test]
    fn qualified_call_filters_by_owner() {
        let src = "
            struct A; struct B;
            impl A { fn new(x: u32) -> A { A } }
            impl B { fn new(x: u32) -> B { B } }
            fn entry() { let a = A::new(1); }
        ";
        let (_, s, g) = build(&[("core", "crates/core/src/a.rs", src)]);
        let entry = s.fns.iter().position(|d| d.name == "entry").unwrap();
        assert_eq!(g.edges[entry].len(), 1);
        assert_eq!(s.fns[g.edges[entry][0].callee].owner.as_deref(), Some("A"));
    }

    #[test]
    fn macro_names_are_not_calls_but_their_args_are_walked() {
        let src = "
            fn helper(x: u32) -> u32 { x }
            fn entry() { println!(\"{}\", helper(1)); }
        ";
        let (_, s, g) = build(&[("core", "crates/core/src/a.rs", src)]);
        assert!(edge_between(&s, &g, "entry", "helper"));
    }

    #[test]
    fn resolution_permille_is_deterministic() {
        let stats = GraphStats {
            calls_resolved: 7,
            calls_ambiguous: 1,
            ..GraphStats::default()
        };
        assert_eq!(stats.resolution_permille(), 875);
        assert_eq!(GraphStats::default().resolution_permille(), 1000);
    }
}
