//! A minimal Rust lexer: just enough token structure for the audit rules.
//!
//! The workspace builds fully offline with an in-tree dependency set, so a
//! `syn`-grade parser is not available; the rules instead work on a token
//! stream. The lexer's job is to make that stream trustworthy: comments
//! (line, block, nested block, doc), string literals (plain, raw, byte),
//! char literals vs. lifetimes, and numeric literals are all classified,
//! so a rule matching `Instant` never fires on a doc example or a string.

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`Instant`, `for`, `unwrap`, ...).
    Ident,
    /// Any punctuation byte sequence the lexer does not merge (`.`/`::`/
    /// `==`/`!=`/`#`/`[`/... — multi-byte operators that the rules care
    /// about are merged into one token).
    Punct,
    /// An integer or float literal; `is_float` distinguishes them.
    Number {
        /// True for literals with a fractional part, exponent, or an
        /// `f32`/`f64` suffix — the operands the float-equality rule
        /// tracks.
        is_float: bool,
    },
    /// A string, raw string, byte string or char literal (contents are
    /// opaque to every rule).
    Literal,
    /// A lifetime (`'a`) — kept distinct so `'static` is never an Ident.
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text, verbatim.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Lexes `source` into tokens, dropping comments and whitespace.
///
/// The lexer is forgiving: on a construct it cannot classify (stray byte,
/// unterminated literal) it consumes one byte and moves on, because audit
/// rules must never make the build fail on code `rustc` accepts — worst
/// case a malformed region yields no tokens and therefore no findings.
pub fn lex(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, newlines) = skip_string(b, i);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'r' if starts_raw_ident(b, i) => {
                // A raw identifier (`r#type`, `r#fn`) is one Ident token,
                // prefix preserved: definitions and call sites then match
                // each other textually, and the `fn`-like suffix can never
                // be mistaken for a keyword by token-stream passes.
                let mut end = i + 2;
                while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (end, newlines) = skip_raw_or_byte_string(b, i);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident not
                // followed by a closing quote (`'a`, `'static`); anything
                // else (`'x'`, `'\n'`, `'\u{1F600}'`) is a char literal.
                if let Some(end) = lifetime_end(b, i) {
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[i..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let end = skip_char_literal(b, i);
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: source[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let (end, is_float) = scan_number(b, i);
                tokens.push(Token {
                    kind: TokenKind::Number { is_float },
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = i + 1;
                while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ => {
                let end = scan_punct(b, i);
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
        }
    }
    tokens
}

/// Multi-byte operators merged into a single `Punct` token; everything else
/// is one byte. Only operators a rule distinguishes need merging.
const MERGED_PUNCT: &[&str] = &["::", "==", "!=", "->", "=>", "..=", "..", "<=", ">="];

fn scan_punct(b: &[u8], i: usize) -> usize {
    for m in MERGED_PUNCT {
        if b[i..].starts_with(m.as_bytes()) {
            return i + m.len();
        }
    }
    i + 1
}

fn skip_string(b: &[u8], start: usize) -> (usize, usize) {
    // start points at the opening quote.
    let mut i = start + 1;
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

fn starts_raw_ident(b: &[u8], i: usize) -> bool {
    // `r#` followed by an identifier start and NOT by `"` (that would be a
    // raw string with one hash: `r#"..."#`).
    b[i..].starts_with(b"r#")
        && b.get(i + 2)
            .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_')
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  b"..."  b'..' — anything that opens a
    // string/byte literal with an `r`/`b` prefix.
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") {
        return true;
    }
    if rest.starts_with(b"b\"") || rest.starts_with(b"b'") {
        return true;
    }
    rest.starts_with(b"br\"") || rest.starts_with(b"br#")
}

fn skip_raw_or_byte_string(b: &[u8], start: usize) -> (usize, usize) {
    let mut i = start;
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        return (skip_char_literal(b, i), 0);
    }
    if i < b.len() && b[i] == b'r' {
        i += 1;
        let mut hashes = 0;
        while i < b.len() && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i < b.len() && b[i] == b'"' {
            i += 1;
            let mut newlines = 0;
            while i < b.len() {
                if b[i] == b'\n' {
                    newlines += 1;
                    i += 1;
                } else if b[i] == b'"'
                    && b[i + 1..].len() >= hashes
                    && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
                {
                    return (i + 1 + hashes, newlines);
                } else {
                    i += 1;
                }
            }
            return (b.len(), newlines);
        }
        // `r` was just an identifier start after all (e.g. `r#foo` raw
        // ident) — treat the prefix as consumed text up to here.
        return (i, 0);
    }
    // b"..."
    let (end, newlines) = skip_string(b, i);
    (end, newlines)
}

fn lifetime_end(b: &[u8], i: usize) -> Option<usize> {
    // `'` ident-start, and the char after the ident run is NOT `'`.
    let first = *b.get(i + 1)?;
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return None;
    }
    let mut end = i + 2;
    while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
        end += 1;
    }
    if b.get(end) == Some(&b'\'') {
        None // 'x' — a char literal
    } else {
        Some(end)
    }
}

fn skip_char_literal(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if i < b.len() && b[i] == b'\'' {
        i += 1;
    }
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // unterminated; bail at the line end
            _ => i += 1,
        }
    }
    b.len()
}

fn scan_number(b: &[u8], start: usize) -> (usize, bool) {
    let mut i = start;
    let mut is_float = false;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    // A fractional part only counts when followed by a digit — `1.` in
    // `1..n` is a range, `x.0` handled by the ident path (tuple index).
    if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    let text = &b[start..i];
    if text.ends_with(b"f32") || text.ends_with(b"f64") {
        is_float = true;
    }
    // Exponents: 1e9 (without a dot) — alphanumeric scan already took the
    // `e9`; classify as float only when an explicit sign follows (`1e-9`).
    if !is_float && i < b.len() && (b[i] == b'-' || b[i] == b'+') && ends_with_exponent(text) {
        if b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            i += 1;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
        }
    } else if !is_float && contains_exponent(text) {
        is_float = true;
    }
    (i, is_float)
}

fn ends_with_exponent(text: &[u8]) -> bool {
    text.len() >= 2 && (text[text.len() - 1] == b'e' || text[text.len() - 1] == b'E')
}

fn contains_exponent(text: &[u8]) -> bool {
    // `1e9` is a float; `0x1e9` is hex; `1u64` has no exponent.
    if text.starts_with(b"0x") || text.starts_with(b"0X") {
        return false;
    }
    text.iter().skip(1).any(|&c| c == b'e' || c == b'E')
        && text
            .iter()
            .all(|&c| c.is_ascii_digit() || c == b'e' || c == b'E' || c == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_disappear() {
        let toks = texts("let x = \"Instant::now()\"; // Instant\n/* Instant */ y");
        assert!(toks.contains(&"x".to_string()));
        assert!(toks.contains(&"y".to_string()));
        assert!(!toks.contains(&"Instant".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("/* a /* b */ still comment */ real");
        assert_eq!(toks, vec!["real"]);
    }

    #[test]
    fn raw_strings_are_single_literals() {
        let toks = lex("r#\"has \"quotes\" inside\"# tail");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "tail");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("&'static str; 'x'; '\\n'");
        assert_eq!(toks[1].kind, TokenKind::Lifetime);
        assert_eq!(toks[1].text, "'static");
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_classification() {
        let kinds: Vec<bool> = lex("1.5 2 3.0f64 4f32 1e-9 0x1e9 7u64 1..3")
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number { is_float } => Some(is_float),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![true, false, true, true, true, false, false, false, false]
        );
    }

    #[test]
    fn raw_idents_are_single_ident_tokens() {
        // `r#type` must not decay into a bogus `r#` literal followed by a
        // keyword-looking `type` ident (that corrupted the symbol pass).
        let toks = lex("fn r#type() { r#fn() }");
        let raws: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text.starts_with("r#"))
            .collect();
        assert_eq!(raws.len(), 2, "{toks:?}");
        assert_eq!(raws[0].text, "r#type");
        assert_eq!(raws[1].text, "r#fn");
        assert!(!toks
            .iter()
            .any(|t| t.is_ident("type") || t.is_ident("fn") && t.text == "type"));
    }

    #[test]
    fn banned_idents_inside_raw_strings_never_tokenize() {
        // Multi-hash raw strings with quote-hash runs inside: every banned
        // name stays inside one Literal token.
        let src = r####"let x = r##"Instant::now() "# thread_rng() unwrap()"## ; tail"####;
        let toks = lex(src);
        for banned in ["Instant", "thread_rng", "unwrap"] {
            assert!(!toks.iter().any(|t| t.is_ident(banned)), "{banned} leaked");
        }
        assert!(toks.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn unterminated_raw_string_with_partial_hash_close_consumes_to_eof() {
        // `r##"..."#` — one hash short of closing. The old lexer's
        // `take(hashes)` check treated EOF as a match and resumed lexing
        // mid-literal; everything must stay inside the literal instead.
        let toks = lex("r##\"body\"# Instant::now()");
        assert!(!toks.iter().any(|t| t.is_ident("Instant")), "{toks:?}");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Literal);
    }

    #[test]
    fn banned_idents_inside_nested_block_comments_never_tokenize() {
        let src = "/* outer /* SystemTime::now() /* deeper unwrap() */ */ still */ fn f() {}";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn merged_operators() {
        let toks = texts("a == b != c :: d");
        assert!(toks.contains(&"==".to_string()));
        assert!(toks.contains(&"!=".to_string()));
        assert!(toks.contains(&"::".to_string()));
    }
}
