//! The machine-readable audit report and its baseline gate.
//!
//! `cshard-audit --json <path>` serialises the scan outcome — findings
//! *and* call-graph statistics — as stable, sorted JSON: object keys are
//! insertion-ordered, findings arrive pre-sorted by `(path, line,
//! rule)`, and every number is an integer (the resolution ratio is
//! per-mille, never a float), so the report is byte-identical across
//! reruns at a fixed commit.
//!
//! `--baseline <path>` then diffs the fresh report against the committed
//! one (`results/audit/AUDIT_baseline.json`): any finding not in the
//! baseline, or a resolution-coverage drop of more than
//! [`PERMILLE_TOLERANCE`]‰, fails loudly. Findings that *disappear* are
//! fine — the gate ratchets one way; regenerate with `just
//! audit-baseline` after intentional changes.

use crate::rules::Finding;
use crate::scan::ScanReport;
use cshard_json::{parse, ObjectBuilder, Value};

/// Allowed drop in `resolution_permille` before the gate fails: small
/// refactors shift a call or two between resolved and external without
/// meaning coverage rot.
pub const PERMILLE_TOLERANCE: u64 = 20;

/// Builds the stable JSON document for a scan.
pub fn report_json(report: &ScanReport) -> Value {
    let findings: Vec<Value> = report.findings.iter().map(finding_json).collect();
    let stats = ObjectBuilder::new()
        .field("files_scanned", report.files_scanned)
        .field("functions", report.stats.functions)
        .field("edges", report.stats.edges)
        .field("calls_total", report.stats.calls_total)
        .field("calls_resolved", report.stats.calls_resolved)
        .field("calls_external", report.stats.calls_external)
        .field("calls_ambiguous", report.stats.calls_ambiguous)
        .field("resolution_permille", report.stats.resolution_permille())
        .field("sink_roots", report.sink_roots)
        .field("reachable", report.reachable)
        .build();
    ObjectBuilder::new()
        .field("schema", 1u64)
        .field("findings", Value::Array(findings))
        .field("stats", stats)
        .build()
}

fn finding_json(f: &Finding) -> Value {
    let chain: Vec<Value> = f.chain.iter().map(|h| Value::from(h.as_str())).collect();
    ObjectBuilder::new()
        .field("rule", f.rule)
        .field("path", f.path.as_str())
        .field("line", f.line)
        .field("message", f.message.as_str())
        .field("chain", Value::Array(chain))
        .build()
}

/// Renders the report document; ends with a newline so the file is
/// POSIX-friendly and `git diff`s cleanly.
pub fn render(doc: &Value) -> String {
    let mut s = doc.to_string_pretty();
    s.push('\n');
    s
}

/// Compares a fresh report against the committed baseline. Returns the
/// list of regressions (empty = gate passes); `Err` when the baseline
/// cannot be parsed.
pub fn baseline_regressions(current: &Value, baseline_text: &str) -> Result<Vec<String>, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let mut regressions = Vec::new();
    let known: Vec<(String, u64, String)> = finding_keys(&baseline);
    for key in finding_keys(current) {
        if !known.contains(&key) {
            regressions.push(format!(
                "new finding not in baseline: {}:{}: {}",
                key.2, key.1, key.0
            ));
        }
    }
    let now = permille(current);
    let then = permille(&baseline);
    if now + PERMILLE_TOLERANCE < then {
        regressions.push(format!(
            "call resolution coverage dropped: {now}\u{2030} now vs {then}\u{2030} in baseline \
             (tolerance {PERMILLE_TOLERANCE}\u{2030})"
        ));
    }
    Ok(regressions)
}

/// `(rule, line, path)` per finding — the identity the gate keys on.
/// Messages are excluded so rewording a description is not a regression.
fn finding_keys(doc: &Value) -> Vec<(String, u64, String)> {
    let Some(findings) = doc.get("findings").and_then(Value::as_array) else {
        return Vec::new();
    };
    findings
        .iter()
        .filter_map(|f| {
            Some((
                f.get("rule")?.as_str()?.to_string(),
                f.get("line")?.as_u64()?,
                f.get("path")?.as_str()?.to_string(),
            ))
        })
        .collect()
}

fn permille(doc: &Value) -> u64 {
    doc.get("stats")
        .and_then(|s| s.get("resolution_permille"))
        .and_then(Value::as_u64)
        .unwrap_or(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScanReport {
        let mut f = Finding::new("ND101", "crates/x/src/a.rs", 7, "wall clock".to_string());
        f.chain = vec!["root (crates/x/src/a.rs:3)".to_string()];
        ScanReport {
            findings: vec![f],
            files_scanned: 4,
            ..ScanReport::default()
        }
    }

    #[test]
    fn report_is_byte_stable_across_renders() {
        let report = sample_report();
        let a = render(&report_json(&report));
        let b = render(&report_json(&report));
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"resolution_permille\": 1000"), "{a}");
        assert!(a.contains("\"chain\""), "{a}");
    }

    #[test]
    fn identical_report_passes_the_gate() {
        let doc = report_json(&sample_report());
        let regressions = baseline_regressions(&doc, &render(&doc)).unwrap();
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn new_finding_fails_the_gate_and_removed_finding_does_not() {
        let with = report_json(&sample_report());
        let without = report_json(&ScanReport {
            files_scanned: 4,
            ..ScanReport::default()
        });
        // Baseline empty, report has a finding: regression.
        let r = baseline_regressions(&with, &render(&without)).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("ND101"), "{r:?}");
        // Baseline has it, report clean: ratchet tightens silently.
        let r = baseline_regressions(&without, &render(&with)).unwrap();
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn coverage_drop_beyond_tolerance_fails_the_gate() {
        let mut current = sample_report();
        current.findings.clear();
        current.stats.calls_resolved = 90;
        current.stats.calls_ambiguous = 10; // 900‰
        let mut baseline = ScanReport {
            files_scanned: 4,
            ..ScanReport::default()
        };
        baseline.stats.calls_resolved = 100; // 1000‰
        let r =
            baseline_regressions(&report_json(&current), &render(&report_json(&baseline))).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("coverage dropped"), "{r:?}");
    }

    #[test]
    fn garbage_baseline_is_an_error_not_a_pass() {
        let doc = report_json(&sample_report());
        assert!(baseline_regressions(&doc, "not json").is_err());
    }
}
