//! Walking the workspace and applying the policy.

use crate::lexer::lex;
use crate::policy::Policy;
use crate::rules::{apply_token_rule, Finding, TOKEN_RULES};
use std::fs;
use std::path::{Path, PathBuf};

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All findings, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Scans every policy-listed crate under `root` and returns the findings.
///
/// IO errors (an unreadable file, a crate directory missing) are reported
/// as findings under the synthetic `AUDIT` rule rather than aborting: the
/// gate's job is to fail loudly with diagnostics, not to crash.
pub fn scan_workspace(root: &Path, policy: &Policy) -> ScanReport {
    let mut report = ScanReport::default();
    for krate in &policy.crates {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files, &mut report.findings);
        files.sort();
        for file in files {
            scan_file(root, krate, &file, policy, &mut report);
        }
        check_crate_headers(root, krate, policy, &mut report.findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Workspace crates the policy covers in neither `[audit] crates` nor
/// `[audit] exempt`: directories under `crates/` that contain a
/// `Cargo.toml`. A non-empty result is a coverage gap — a new crate was
/// added without deciding whether the determinism contract binds it — and
/// the audit binary treats it as a setup error (exit 2).
pub fn uncovered_crates(root: &Path, policy: &Policy) -> Vec<String> {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return Vec::new();
    };
    let mut uncovered: Vec<String> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if !path.is_dir() || !path.join("Cargo.toml").is_file() {
                return None;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let covered = policy.crates.contains(&name) || policy.exempt.contains(&name);
            (!covered).then_some(name)
        })
        .collect();
    uncovered.sort();
    uncovered
}

fn scan_file(root: &Path, krate: &str, file: &Path, policy: &Policy, report: &mut ScanReport) {
    let rel = workspace_relative(root, file);
    let source = match fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            report.findings.push(io_finding(&rel, e));
            return;
        }
    };
    report.files_scanned += 1;
    let tokens = lex(&source);
    for rule in TOKEN_RULES {
        let Some(rp) = policy.rules.get(rule) else {
            continue; // a rule absent from the policy is switched off
        };
        if !rp.applies_to(krate, &policy.crates) || rp.is_allowed(&rel) {
            continue;
        }
        report
            .findings
            .extend(apply_token_rule(rule, rp, &rel, &tokens));
    }
}

/// AH001: every protocol crate's `src/lib.rs` must carry the lint headers
/// the policy requires (`required`, plus `required_<crate>` extras), so
/// attribute hygiene cannot silently drift.
fn check_crate_headers(root: &Path, krate: &str, policy: &Policy, findings: &mut Vec<Finding>) {
    let Some(rp) = policy.rules.get("AH001") else {
        return;
    };
    if !rp.applies_to(krate, &policy.crates) {
        return;
    }
    let lib = root.join("crates").join(krate).join("src").join("lib.rs");
    let rel = workspace_relative(root, &lib);
    if rp.is_allowed(&rel) {
        return;
    }
    let source = match fs::read_to_string(&lib) {
        Ok(s) => s,
        Err(e) => {
            findings.push(io_finding(&rel, e));
            return;
        }
    };
    let mut required: Vec<&String> = rp.lists.get("required").into_iter().flatten().collect();
    if let Some(extra) = rp
        .lists
        .get(&format!("required_{}", krate.replace('-', "_")))
    {
        required.extend(extra);
    }
    for header in required {
        if !source.contains(header.as_str()) {
            findings.push(Finding {
                rule: "AH001",
                path: rel.clone(),
                line: 1,
                message: format!(
                    "missing required crate header `{header}` — {}",
                    rp.description
                ),
            });
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>, findings: &mut Vec<Finding>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            findings.push(io_finding(&dir.display().to_string(), e));
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out, findings);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

fn io_finding(path: &str, e: std::io::Error) -> Finding {
    Finding {
        rule: "AUDIT",
        path: path.to_string(),
        line: 0,
        message: format!("io error: {e}"),
    }
}

fn workspace_relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_crate_directory_is_a_finding_not_a_crash() {
        let policy = Policy::parse("[audit]\ncrates = [\"no-such-crate\"]\n").unwrap();
        let report = scan_workspace(Path::new("/nonexistent-root"), &policy);
        assert_eq!(report.files_scanned, 0);
        assert!(report.findings.iter().any(|f| f.rule == "AUDIT"));
    }
}
