//! Walking the workspace and applying the policy.
//!
//! Each policy-listed crate's `.rs` files are read and lexed **once**
//! into [`FileTokens`]; the file-scoped token rules run over each
//! stream, then the three interprocedural passes run over all of them
//! together: symbol table ([`crate::symbols`]), call graph
//! ([`crate::callgraph`]) and taint propagation ([`crate::taint`]).

use crate::callgraph::{AmbiguousCall, CallGraph, GraphStats};
use crate::policy::Policy;
use crate::rules::{apply_token_rule, Finding, TOKEN_RULES};
use crate::symbols::{FileTokens, SymbolTable};
use crate::taint;
use std::fs;
use std::path::{Path, PathBuf};

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All findings, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Call-graph resolution statistics.
    pub stats: GraphStats,
    /// Protocol sink roots the taint pass started from.
    pub sink_roots: usize,
    /// Functions reachable from any sink root (roots included).
    pub reachable: usize,
    /// Calls the resolver could not settle — a `[callgraph] resolve`
    /// override is required; the binary treats these as setup errors.
    pub ambiguous: Vec<AmbiguousCall>,
}

/// Scans every policy-listed crate under `root` and returns the findings.
///
/// IO errors (an unreadable file, a crate directory missing) are reported
/// as findings under the synthetic `AUDIT` rule rather than aborting: the
/// gate's job is to fail loudly with diagnostics, not to crash.
pub fn scan_workspace(root: &Path, policy: &Policy) -> ScanReport {
    let mut report = ScanReport::default();
    let mut file_tokens: Vec<FileTokens> = Vec::new();
    for krate in &policy.crates {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files, &mut report.findings);
        files.sort();
        for file in files {
            if let Some(ft) = scan_file(root, krate, &file, policy, &mut report) {
                file_tokens.push(ft);
            }
        }
        check_crate_headers(root, krate, policy, &mut report.findings);
    }
    // Interprocedural passes over every scanned file at once — symbols
    // and edges cross crate boundaries, so they cannot run per-crate.
    let symbols = SymbolTable::build(&file_tokens);
    let graph = CallGraph::build(&file_tokens, &symbols, &policy.callgraph);
    let taint = taint::analyze(&file_tokens, &symbols, &graph, policy);
    report.stats = graph.stats;
    report.ambiguous = graph.ambiguous;
    report.sink_roots = taint.sink_roots.len();
    report.reachable = taint.reachable;
    report.findings.extend(taint.findings);
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Workspace crates the policy covers in neither `[audit] crates` nor
/// `[audit] exempt`: directories under `crates/` that contain a
/// `Cargo.toml`. A non-empty result is a coverage gap — a new crate was
/// added without deciding whether the determinism contract binds it — and
/// the audit binary treats it as a setup error (exit 2).
pub fn uncovered_crates(root: &Path, policy: &Policy) -> Vec<String> {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return Vec::new();
    };
    let mut uncovered: Vec<String> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            if !path.is_dir() || !path.join("Cargo.toml").is_file() {
                return None;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let covered = policy.crates.contains(&name) || policy.exempt.contains(&name);
            (!covered).then_some(name)
        })
        .collect();
    uncovered.sort();
    uncovered
}

/// Reads, lexes and token-rule-checks one file; returns its tokens for
/// the interprocedural passes (or `None` when unreadable).
fn scan_file(
    root: &Path,
    krate: &str,
    file: &Path,
    policy: &Policy,
    report: &mut ScanReport,
) -> Option<FileTokens> {
    let rel = workspace_relative(root, file);
    let source = match fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            report.findings.push(io_finding(&rel, e));
            return None;
        }
    };
    report.files_scanned += 1;
    let ft = FileTokens::new(krate, &rel, &source);
    for rule in TOKEN_RULES {
        let Some(rp) = policy.rules.get(rule) else {
            continue; // a rule absent from the policy is switched off
        };
        if !rp.applies_to(krate, &policy.crates) || rp.is_allowed(&rel) {
            continue;
        }
        report
            .findings
            .extend(apply_token_rule(rule, rp, &rel, &ft.tokens));
    }
    Some(ft)
}

/// AH001: every protocol crate's `src/lib.rs` must carry the lint headers
/// the policy requires (`required`, plus `required_<crate>` extras), so
/// attribute hygiene cannot silently drift.
fn check_crate_headers(root: &Path, krate: &str, policy: &Policy, findings: &mut Vec<Finding>) {
    let Some(rp) = policy.rules.get("AH001") else {
        return;
    };
    if !rp.applies_to(krate, &policy.crates) {
        return;
    }
    let lib = root.join("crates").join(krate).join("src").join("lib.rs");
    let rel = workspace_relative(root, &lib);
    if rp.is_allowed(&rel) {
        return;
    }
    let source = match fs::read_to_string(&lib) {
        Ok(s) => s,
        Err(e) => {
            findings.push(io_finding(&rel, e));
            return;
        }
    };
    let mut required: Vec<&String> = rp.lists.get("required").into_iter().flatten().collect();
    if let Some(extra) = rp
        .lists
        .get(&format!("required_{}", krate.replace('-', "_")))
    {
        required.extend(extra);
    }
    for header in required {
        if !source.contains(header.as_str()) {
            findings.push(Finding::new(
                "AH001",
                &rel,
                1,
                format!(
                    "missing required crate header `{header}` — {}",
                    rp.description
                ),
            ));
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>, findings: &mut Vec<Finding>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            findings.push(io_finding(&dir.display().to_string(), e));
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out, findings);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

fn io_finding(path: &str, e: std::io::Error) -> Finding {
    Finding::new("AUDIT", path, 0, format!("io error: {e}"))
}

fn workspace_relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_crate_directory_is_a_finding_not_a_crash() {
        let policy = Policy::parse("[audit]\ncrates = [\"no-such-crate\"]\n").unwrap();
        let report = scan_workspace(Path::new("/nonexistent-root"), &policy);
        assert_eq!(report.files_scanned, 0);
        assert!(report.findings.iter().any(|f| f.rule == "AUDIT"));
    }
}
