//! Account addresses.

use crate::hex;
use std::fmt;

/// A 20-byte account address (Ethereum-style).
///
/// Both externally-owned user accounts and smart-contract accounts are
/// addressed this way; the ledger's account table distinguishes the kinds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address, conventionally "the system" (mints block rewards
    /// and shard rewards).
    pub const SYSTEM: Address = Address([0u8; 20]);

    /// Builds an address from raw bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Deterministically derives a user address from an index.
    ///
    /// Test and workload helpers use this so that address `k` is stable
    /// across runs. The tag byte keeps user / contract namespaces disjoint.
    pub fn user(index: u64) -> Self {
        Self::tagged(0x01, index)
    }

    /// Deterministically derives a contract address from an index.
    pub fn contract(index: u64) -> Self {
        Self::tagged(0x02, index)
    }

    /// Deterministically derives a miner coinbase address from an index.
    pub fn miner(index: u64) -> Self {
        Self::tagged(0x03, index)
    }

    fn tagged(tag: u8, index: u64) -> Self {
        let mut bytes = [0u8; 20];
        bytes[0] = tag;
        bytes[12..20].copy_from_slice(&index.to_be_bytes());
        Address(bytes)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(&self.0))
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0[0] {
            0x01 => write!(f, "user#{}", self.index()),
            0x02 => write!(f, "contract#{}", self.index()),
            0x03 => write!(f, "miner#{}", self.index()),
            _ if *self == Self::SYSTEM => write!(f, "SYSTEM"),
            _ => write!(f, "Address(0x{})", hex::encode(&self.0)),
        }
    }
}

impl Address {
    fn index(&self) -> u64 {
        u64::from_be_bytes(self.0[12..20].try_into().expect("8 bytes"))
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derived_addresses_are_distinct() {
        let mut set = HashSet::new();
        for i in 0..100 {
            assert!(set.insert(Address::user(i)));
            assert!(set.insert(Address::contract(i)));
            assert!(set.insert(Address::miner(i)));
        }
        assert_eq!(set.len(), 300);
        assert!(!set.contains(&Address::SYSTEM));
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(Address::user(42), Address::user(42));
        assert_ne!(Address::user(42), Address::user(43));
    }

    #[test]
    fn debug_formatting_names_the_namespace() {
        assert_eq!(format!("{:?}", Address::user(7)), "user#7");
        assert_eq!(format!("{:?}", Address::contract(3)), "contract#3");
        assert_eq!(format!("{:?}", Address::miner(0)), "miner#0");
        assert_eq!(format!("{:?}", Address::SYSTEM), "SYSTEM");
    }

    #[test]
    fn display_is_hex() {
        let a = Address::SYSTEM;
        assert_eq!(a.to_string(), format!("0x{}", "00".repeat(20)));
    }
}
