//! 32-byte hash values.

use crate::hex;
use std::fmt;

/// A 256-bit hash digest.
///
/// Used for block hashes, transaction ids and verifiable-randomness outputs.
/// The digest algorithm itself lives in `cshard-crypto`; this type is only
/// the value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash32(pub [u8; 32]);

impl Hash32 {
    /// The all-zero hash, used as the parent of genesis blocks.
    pub const ZERO: Hash32 = Hash32([0u8; 32]);

    /// Builds a hash from raw bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash32(bytes)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 8 bytes as a big-endian integer.
    ///
    /// Handy for mapping a hash to a number, e.g. PoW target comparison or
    /// deriving a pseudo-random index.
    pub fn leading_u64(&self) -> u64 {
        be_u64(&self.0, 0)
    }

    /// Interprets the whole hash modulo `n` (for `n > 0`).
    ///
    /// Uses the leading 16 bytes to keep bias negligible for any practical
    /// `n` (bias < 2^-64 for n < 2^64).
    pub fn mod_u64(&self, n: u64) -> u64 {
        assert!(n > 0, "modulus must be positive");
        let hi = be_u64(&self.0, 0) as u128;
        let lo = be_u64(&self.0, 8) as u128;
        let wide = (hi << 64) | lo;
        (wide % n as u128) as u64
    }

    /// Counts leading zero bits — the classic PoW difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut zeros = 0;
        for &byte in &self.0 {
            if byte == 0 {
                zeros += 8;
            } else {
                zeros += byte.leading_zeros();
                break;
            }
        }
        zeros
    }

    /// Returns true when the hash, read as a 256-bit big-endian integer, is
    /// strictly below a target expressed as `leading_zero_bits` difficulty.
    pub fn meets_difficulty(&self, difficulty_bits: u32) -> bool {
        self.leading_zero_bits() >= difficulty_bits
    }

    /// Parses a hex string (with or without `0x` prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = hex::decode(s)?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Hash32(arr))
    }
}

/// Big-endian `u64` from 8 bytes of the digest starting at `offset`.
fn be_u64(bytes: &[u8; 32], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_be_bytes(b)
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(&self.0))
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviate: the full 64 hex chars drown debug output.
        write!(f, "Hash32(0x{}..)", hex::encode(&self.0[..4]))
    }
}

impl From<[u8; 32]> for Hash32 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash32(bytes)
    }
}

impl AsRef<[u8]> for Hash32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hash_is_all_zero() {
        assert_eq!(Hash32::ZERO.0, [0u8; 32]);
        assert_eq!(Hash32::ZERO.leading_zero_bits(), 256);
    }

    #[test]
    fn leading_u64_is_big_endian() {
        let mut bytes = [0u8; 32];
        bytes[7] = 1;
        assert_eq!(Hash32(bytes).leading_u64(), 1);
        bytes[0] = 1;
        assert_eq!(Hash32(bytes).leading_u64(), (1 << 56) | 1);
    }

    #[test]
    fn mod_u64_in_range() {
        let mut bytes = [0xFFu8; 32];
        bytes[15] = 0xFE;
        let h = Hash32(bytes);
        for n in [1u64, 2, 7, 100, u64::MAX] {
            assert!(h.mod_u64(n) < n);
        }
        assert_eq!(h.mod_u64(1), 0);
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn mod_zero_panics() {
        Hash32::ZERO.mod_u64(0);
    }

    #[test]
    fn leading_zero_bits_counts_partial_bytes() {
        let mut bytes = [0u8; 32];
        bytes[2] = 0b0001_0000;
        assert_eq!(Hash32(bytes).leading_zero_bits(), 16 + 3);
    }

    #[test]
    fn difficulty_check() {
        let mut bytes = [0xFFu8; 32];
        bytes[0] = 0;
        bytes[1] = 0x0F;
        let h = Hash32(bytes);
        assert!(h.meets_difficulty(12));
        assert!(h.meets_difficulty(0));
        assert!(!h.meets_difficulty(13));
    }

    #[test]
    fn hex_round_trip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let h = Hash32(bytes);
        let s = h.to_string();
        assert!(s.starts_with("0x"));
        assert_eq!(Hash32::from_hex(&s), Some(h));
        assert_eq!(Hash32::from_hex(s.trim_start_matches("0x")), Some(h));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Hash32::from_hex("0x1234"), None); // too short
        assert_eq!(Hash32::from_hex("zz"), None);
    }

    #[test]
    fn display_and_debug_are_stable() {
        let h = Hash32::ZERO;
        assert_eq!(h.to_string(), format!("0x{}", "00".repeat(32)));
        assert_eq!(format!("{h:?}"), "Hash32(0x00000000..)");
    }
}
