//! Fundamental value types shared by every ContractShard crate.
//!
//! This crate is dependency-light on purpose: it defines the vocabulary of
//! the system — hashes, addresses, amounts, identifiers and simulated time —
//! and nothing else. Every other crate builds on these types, so they are all
//! small, `Copy` where possible, and implement the full complement of
//! ordering/hashing traits needed to be used as map keys.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod address;
pub mod amount;
pub mod error;
pub mod hash;
pub mod hex;
pub mod ids;
pub mod time;

pub use address::Address;
pub use amount::Amount;
pub use error::Error;
pub use hash::Hash32;
pub use ids::{BlockHeight, ContractId, MinerId, Nonce, ShardId, TxId};
pub use time::SimTime;
