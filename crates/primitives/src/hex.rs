//! Minimal hex encode/decode helpers (no external dependency).

/// Encodes bytes as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0F) as usize] as char);
    }
    out
}

/// Decodes a hex string (optionally `0x`-prefixed, case-insensitive).
///
/// Returns `None` on odd length or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_vectors() {
        assert_eq!(encode(&[]), "");
        assert_eq!(encode(&[0x00, 0xFF, 0x10]), "00ff10");
    }

    #[test]
    fn decode_known_vectors() {
        assert_eq!(decode("00ff10"), Some(vec![0x00, 0xFF, 0x10]));
        assert_eq!(decode("0x00FF10"), Some(vec![0x00, 0xFF, 0x10]));
        assert_eq!(decode(""), Some(vec![]));
    }

    #[test]
    fn decode_rejects_invalid() {
        assert_eq!(decode("abc"), None); // odd length
        assert_eq!(decode("zz"), None); // bad chars
    }

    #[test]
    fn round_trip_all_bytes() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)), Some(all));
    }
}
