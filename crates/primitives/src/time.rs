//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in integer **milliseconds** since the start of
/// the simulation.
///
/// Milliseconds give a total order (needed by the event queue) while being
/// fine-grained enough for sub-second block intervals (the ChainSpace
/// comparison runs at 76 tx/s).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The end of simulated time (`u64::MAX` milliseconds).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Builds a time from fractional seconds, rounding to milliseconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input — simulated time never runs
    /// backwards.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative, got {secs}"
        );
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Saturating sum: clamps at [`SimTime::MAX`] instead of overflowing.
    pub fn saturating_add(&self, delay: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(delay.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimTime::from_millis(250).as_secs_f64(), 0.25);
    }

    #[test]
    fn rounding_to_millis() {
        assert_eq!(SimTime::from_secs_f64(0.0004).as_millis(), 0);
        assert_eq!(SimTime::from_secs_f64(0.0006).as_millis(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(40);
        assert_eq!(a + b, SimTime::from_millis(140));
        assert_eq!(a - b, SimTime::from_millis(60));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_millis(60));
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
        assert_eq!(a.saturating_add(b), a + b);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::from_secs(0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
