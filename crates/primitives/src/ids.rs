//! Identifier newtypes: shards, contracts, miners, transactions, blocks.

use crate::hash::Hash32;
use std::fmt;

/// Identifier of a shard.
///
/// Shard ids are carried in block headers (Sec. III-C of the paper) so that
/// receivers can check the packer really belongs to the claimed shard.
/// [`ShardId::MAX_SHARD`] is the distinguished shard for transactions whose
/// senders touch more than one contract or transact with users directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The MaxShard: holds all transactions that cannot be isolated to a
    /// single contract. Its miners record the full system state.
    pub const MAX_SHARD: ShardId = ShardId(u32::MAX);

    /// Builds a regular (contract-centric) shard id.
    pub const fn new(id: u32) -> Self {
        ShardId(id)
    }

    /// True when this is the MaxShard.
    pub const fn is_max_shard(&self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_max_shard() {
            write!(f, "MaxShard")
        } else {
            write!(f, "shard-{}", self.0)
        }
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Identifier of a smart contract (dense index into the contract registry).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContractId(pub u32);

impl ContractId {
    /// Builds a contract id.
    pub const fn new(id: u32) -> Self {
        ContractId(id)
    }
}

impl fmt::Display for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract-{}", self.0)
    }
}

impl fmt::Debug for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Identifier of a miner (dense index into the miner registry).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MinerId(pub u32);

impl MinerId {
    /// Builds a miner id.
    pub const fn new(id: u32) -> Self {
        MinerId(id)
    }

    /// Index for dense per-miner arrays.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MinerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "miner-{}", self.0)
    }
}

impl fmt::Debug for MinerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A transaction id — the hash of the transaction's canonical encoding.
pub type TxId = Hash32;

/// A monotonically increasing per-account transaction counter, preventing
/// replay (Ethereum-style).
pub type Nonce = u64;

/// Height of a block in its shard's chain (genesis = 0).
pub type BlockHeight = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_shard_is_distinguished() {
        assert!(ShardId::MAX_SHARD.is_max_shard());
        assert!(!ShardId::new(0).is_max_shard());
        assert!(!ShardId::new(1000).is_max_shard());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ShardId::new(3).to_string(), "shard-3");
        assert_eq!(ShardId::MAX_SHARD.to_string(), "MaxShard");
        assert_eq!(ContractId::new(2).to_string(), "contract-2");
        assert_eq!(MinerId::new(5).to_string(), "miner-5");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ShardId::new(1) < ShardId::new(2));
        assert!(ShardId::new(12345) < ShardId::MAX_SHARD);
        assert!(MinerId::new(0) < MinerId::new(1));
    }

    #[test]
    fn miner_index() {
        assert_eq!(MinerId::new(7).index(), 7);
    }
}
