//! Coin amounts with checked arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A coin amount (balance, fee, or reward) in the chain's smallest unit.
///
/// Arithmetic via `+`/`-` panics on overflow/underflow in all build profiles
/// — a ledger must never silently wrap. Use [`Amount::checked_sub`] where an
/// insufficient balance is an expected, recoverable condition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(pub u64);

impl Amount {
    /// Zero coins.
    pub const ZERO: Amount = Amount(0);

    /// One whole coin, in base units (10^9, a gwei-like granularity).
    pub const COIN: Amount = Amount(1_000_000_000);

    /// Builds an amount from raw base units.
    pub const fn from_raw(units: u64) -> Self {
        Amount(units)
    }

    /// Builds an amount from whole coins.
    ///
    /// Saturates at [`u64::MAX`] base units if `coins * 10^9` overflows —
    /// configuration-scale inputs never get near that, and saturation keeps
    /// this constructor off the panic path.
    pub fn from_coins(coins: u64) -> Self {
        Amount(coins.saturating_mul(Self::COIN.0))
    }

    /// Raw base units.
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// Returns `self - rhs`, or `None` when the balance is insufficient.
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Returns `self + rhs`, or `None` on overflow.
    pub fn checked_add(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_add(rhs.0).map(Amount)
    }

    /// Saturating addition — used by reward accounting where clamping at
    /// `u64::MAX` is preferable to a panic.
    pub fn saturating_add(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_add(rhs.0))
    }

    /// True when the amount is zero.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// The amount as an `f64` — for expected-utility computations in the
    /// game layer, which work with fractional expected fees.
    pub fn as_f64(&self) -> f64 {
        self.0 as f64
    }
}

impl Add for Amount {
    type Output = Amount;
    fn add(self, rhs: Amount) -> Amount {
        Amount(self.0.checked_add(rhs.0).expect("Amount addition overflow"))
    }
}

impl AddAssign for Amount {
    fn add_assign(&mut self, rhs: Amount) {
        *self = *self + rhs;
    }
}

impl Sub for Amount {
    type Output = Amount;
    fn sub(self, rhs: Amount) -> Amount {
        Amount(
            self.0
                .checked_sub(rhs.0)
                .expect("Amount subtraction underflow"),
        )
    }
}

impl SubAssign for Amount {
    fn sub_assign(&mut self, rhs: Amount) {
        *self = *self - rhs;
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / Self::COIN.0;
        let frac = self.0 % Self::COIN.0;
        if frac == 0 {
            write!(f, "{whole} coin")
        } else {
            write!(f, "{whole}.{frac:09} coin")
        }
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Amount({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_conversion() {
        assert_eq!(Amount::from_coins(2).raw(), 2_000_000_000);
        assert_eq!(Amount::from_coins(0), Amount::ZERO);
    }

    #[test]
    fn arithmetic_works() {
        let a = Amount::from_raw(5);
        let b = Amount::from_raw(3);
        assert_eq!(a + b, Amount::from_raw(8));
        assert_eq!(a - b, Amount::from_raw(2));
        let mut c = a;
        c += b;
        c -= Amount::from_raw(1);
        assert_eq!(c, Amount::from_raw(7));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Amount::from_raw(1) - Amount::from_raw(2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn addition_overflow_panics() {
        let _ = Amount::from_raw(u64::MAX) + Amount::from_raw(1);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Amount::from_raw(1).checked_sub(Amount::from_raw(2)), None);
        assert_eq!(
            Amount::from_raw(3).checked_sub(Amount::from_raw(2)),
            Some(Amount::from_raw(1))
        );
        assert_eq!(
            Amount::from_raw(u64::MAX).checked_add(Amount::from_raw(1)),
            None
        );
        assert_eq!(
            Amount::from_raw(u64::MAX).saturating_add(Amount::from_raw(1)),
            Amount::from_raw(u64::MAX)
        );
    }

    #[test]
    fn sum_of_amounts() {
        let total: Amount = (1..=4u64).map(Amount::from_raw).sum();
        assert_eq!(total, Amount::from_raw(10));
    }

    #[test]
    fn display_formats_coins() {
        assert_eq!(Amount::from_coins(2).to_string(), "2 coin");
        assert_eq!(
            Amount::from_raw(1_500_000_000).to_string(),
            "1.500000000 coin"
        );
    }
}
