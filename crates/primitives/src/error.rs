//! The workspace-wide error type.
//!
//! One enum, hand-rolled `Display`/`Error` impls (no `thiserror`
//! dependency), shared by every crate whose fallible entry points an
//! embedding caller might hit with bad inputs: system configuration,
//! miner allocation, and the unification games.

use crate::ids::ShardId;
use std::fmt;

/// Everything a ContractShard entry point can reject instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A configuration field failed validation (builder or direct struct).
    Config {
        /// The offending field, e.g. `"block_capacity"`.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A shard was configured with zero miners — nothing could ever mine
    /// its transactions.
    NoMiners {
        /// The minerless shard.
        shard: ShardId,
    },
    /// A proportional miner allocation cannot staff every shard.
    InsufficientMiners {
        /// Shards that each need at least one miner.
        shards: usize,
        /// Miners available in the pool.
        miners: usize,
    },
    /// A game method was invoked on the wrong [`GameInputs`] variant —
    /// e.g. replaying the merge outcome from a selection broadcast.
    ///
    /// [`GameInputs`]: https://docs.rs/cshard-games
    GameInputs {
        /// The operation that was attempted.
        operation: &'static str,
        /// The inputs variant it requires.
        expected: &'static str,
        /// The variant actually carried by the broadcast.
        got: &'static str,
    },
    /// A protocol driver reported work outstanding but scheduled no
    /// further events — its event stream can never complete, so the run
    /// is aborted instead of spinning or panicking.
    StalledDriver {
        /// Index of the stalled driver in the order handed to the runtime
        /// (the report's shard order).
        index: usize,
    },
    /// A driver was handed an event it never schedules — a malformed
    /// event stream (the typed replacement for an `unreachable!` exit in
    /// an `on_event` path).
    UnexpectedEvent {
        /// The driver type that rejected the event.
        driver: &'static str,
        /// Debug rendering of the offending event.
        event: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config { field, reason } => write!(f, "invalid `{field}`: {reason}"),
            Error::NoMiners { shard } => write!(f, "shard {shard} has no miners"),
            Error::InsufficientMiners { shards, miners } => write!(
                f,
                "need at least one miner per shard ({shards} shards, {miners} miners)"
            ),
            Error::GameInputs {
                operation,
                expected,
                got,
            } => write!(f, "{operation} requires {expected} inputs, got {got}"),
            Error::StalledDriver { index } => write!(
                f,
                "driver {index} reports unfinished work but scheduled no further events"
            ),
            Error::UnexpectedEvent { driver, event } => {
                write!(f, "{driver} received an event it never schedules: {event}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        };
        let s = e.to_string();
        assert!(s.contains("block_capacity"));
        assert!(s.contains("must be positive"));
    }

    #[test]
    fn display_covers_every_variant() {
        assert!(Error::NoMiners {
            shard: ShardId::new(3)
        }
        .to_string()
        .contains("no miners"));
        assert!(Error::InsufficientMiners {
            shards: 9,
            miners: 4
        }
        .to_string()
        .contains("9 shards"));
        assert!(Error::GameInputs {
            operation: "merge_outcome",
            expected: "merge",
            got: "selection"
        }
        .to_string()
        .contains("merge_outcome"));
        assert!(Error::StalledDriver { index: 3 }
            .to_string()
            .contains("driver 3"));
        assert!(Error::UnexpectedEvent {
            driver: "ContractShardDriver",
            event: "EpochAdvance".into()
        }
        .to_string()
        .contains("never schedules"));
    }

    #[test]
    fn errors_are_comparable_and_boxable() {
        assert_eq!(
            Error::NoMiners {
                shard: ShardId::new(0)
            },
            Error::NoMiners {
                shard: ShardId::new(0)
            }
        );
        let boxed: Box<dyn std::error::Error> = Box::new(Error::InsufficientMiners {
            shards: 2,
            miners: 1,
        });
        assert!(boxed.to_string().contains("2 shards"));
    }
}
