//! The workspace-wide error type.
//!
//! One enum, hand-rolled `Display`/`Error` impls (no `thiserror`
//! dependency), shared by every crate whose fallible entry points an
//! embedding caller might hit with bad inputs: system configuration,
//! miner allocation, and the unification games.

use crate::ids::ShardId;
use crate::time::SimTime;
use std::fmt;

/// Everything a ContractShard entry point can reject instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A configuration field failed validation (builder or direct struct).
    Config {
        /// The offending field, e.g. `"block_capacity"`.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A shard was configured with zero miners — nothing could ever mine
    /// its transactions.
    NoMiners {
        /// The minerless shard.
        shard: ShardId,
    },
    /// A proportional miner allocation cannot staff every shard.
    InsufficientMiners {
        /// Shards that each need at least one miner.
        shards: usize,
        /// Miners available in the pool.
        miners: usize,
    },
    /// A game method was invoked on the wrong [`GameInputs`] variant —
    /// e.g. replaying the merge outcome from a selection broadcast.
    ///
    /// [`GameInputs`]: https://docs.rs/cshard-games
    GameInputs {
        /// The operation that was attempted.
        operation: &'static str,
        /// The inputs variant it requires.
        expected: &'static str,
        /// The variant actually carried by the broadcast.
        got: &'static str,
    },
    /// A protocol driver reported work outstanding but scheduled no
    /// further events — its event stream can never complete, so the run
    /// is aborted instead of spinning or panicking.
    StalledDriver {
        /// Index of the stalled driver in the order handed to the runtime
        /// (the report's shard order).
        index: usize,
        /// Simulated time at which the queue drained (the timestamp of the
        /// last popped event, or zero if the driver stalled immediately).
        at: SimTime,
        /// Debug rendering of the last event the driver handled before the
        /// queue drained — the head of the queue when the stall began —
        /// `None` when the driver stalled before handling any event.
        last_event: Option<String>,
    },
    /// Every miner in a leader-failover ranking is marked down — no live
    /// candidate can take over parameter unification for the epoch.
    NoLiveLeader {
        /// The epoch whose failover ranking was exhausted.
        epoch: u64,
    },
    /// A driver was handed an event it never schedules — a malformed
    /// event stream (the typed replacement for an `unreachable!` exit in
    /// an `on_event` path).
    UnexpectedEvent {
        /// The driver type that rejected the event.
        driver: &'static str,
        /// Debug rendering of the offending event.
        event: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config { field, reason } => write!(f, "invalid `{field}`: {reason}"),
            Error::NoMiners { shard } => write!(f, "shard {shard} has no miners"),
            Error::InsufficientMiners { shards, miners } => write!(
                f,
                "need at least one miner per shard ({shards} shards, {miners} miners)"
            ),
            Error::GameInputs {
                operation,
                expected,
                got,
            } => write!(f, "{operation} requires {expected} inputs, got {got}"),
            Error::StalledDriver {
                index,
                at,
                last_event,
            } => {
                write!(
                    f,
                    "driver {index} reports unfinished work but scheduled no further events \
                     (queue drained at t={at}"
                )?;
                match last_event {
                    Some(ev) => write!(f, "; last event handled: {ev})"),
                    None => write!(f, "; no event was ever handled)"),
                }
            }
            Error::NoLiveLeader { epoch } => write!(
                f,
                "epoch {epoch}: every candidate in the leader-failover ranking is down"
            ),
            Error::UnexpectedEvent { driver, event } => {
                write!(f, "{driver} received an event it never schedules: {event}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = Error::Config {
            field: "block_capacity",
            reason: "must be positive".into(),
        };
        let s = e.to_string();
        assert!(s.contains("block_capacity"));
        assert!(s.contains("must be positive"));
    }

    #[test]
    fn display_covers_every_variant() {
        assert!(Error::NoMiners {
            shard: ShardId::new(3)
        }
        .to_string()
        .contains("no miners"));
        assert!(Error::InsufficientMiners {
            shards: 9,
            miners: 4
        }
        .to_string()
        .contains("9 shards"));
        assert!(Error::GameInputs {
            operation: "merge_outcome",
            expected: "merge",
            got: "selection"
        }
        .to_string()
        .contains("merge_outcome"));
        let stalled = Error::StalledDriver {
            index: 3,
            at: SimTime::from_millis(420),
            last_event: Some("BlockFound { miner: 1 }".into()),
        };
        assert!(stalled.to_string().contains("driver 3"));
        assert!(stalled.to_string().contains("t=0.420s"));
        assert!(stalled.to_string().contains("BlockFound { miner: 1 }"));
        assert!(Error::StalledDriver {
            index: 0,
            at: SimTime::ZERO,
            last_event: None,
        }
        .to_string()
        .contains("no event was ever handled"));
        assert!(Error::NoLiveLeader { epoch: 9 }
            .to_string()
            .contains("epoch 9"));
        assert!(Error::UnexpectedEvent {
            driver: "ContractShardDriver",
            event: "EpochAdvance".into()
        }
        .to_string()
        .contains("never schedules"));
    }

    #[test]
    fn errors_are_comparable_and_boxable() {
        assert_eq!(
            Error::NoMiners {
                shard: ShardId::new(0)
            },
            Error::NoMiners {
                shard: ShardId::new(0)
            }
        );
        let boxed: Box<dyn std::error::Error> = Box::new(Error::InsufficientMiners {
            shards: 2,
            miners: 1,
        });
        assert!(boxed.to_string().contains("2 shards"));
    }
}
