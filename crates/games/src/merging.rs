//! The inter-shard merging game (Sec. IV-A, Sec. V, Algorithms 1 and 3).
//!
//! Players are small shards (the paper lets "player i represent miners in
//! shard i"). Each player holds a mixed strategy `x_i = P(merge)`. A slot
//! consists of `M` subslots; in each subslot every player tosses a coin with
//! its current probability, utilities are scored with Eq. (14), and at the
//! end of the slot each player updates its probability with the discretized
//! replicator dynamics of Eq. (11):
//!
//! ```text
//! x_i(t+1) = x_i(t) + η · [ Ū_i(Y, x_-i(t)) − Ū_i(x_i(t)) ] · x_i(t)
//! ```
//!
//! where `Ū_i(Y, ·)` averages utility over the subslots in which `i` merged
//! (Eq. 12) and `Ū_i(x_i)` over all subslots (Eq. 13). The process stops
//! when no probability moves by more than `tolerance` — the fixed point
//! `ẋ = 0`, i.e. the mixed strategy Nash equilibrium (Sec. V-B).
//!
//! Algorithm 1 then applies the one-shot game repeatedly: each round forms
//! one stable shard out of the players whose equilibrium strategy is to
//! merge, removes them, and continues while the remaining small shards can
//! still reach the lower bound `L` of Eq. (1).

use cshard_primitives::{Amount, Error};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::dynamics::{GameDynamics, MergeInput, ReplicatorMergeDynamics};

/// Tunables of the merging game.
#[derive(Clone, Copy, Debug)]
pub struct MergingConfig {
    /// The shard reward `G` every small-shard player receives when the new
    /// shard satisfies Eq. (1).
    pub reward: Amount,
    /// The merging cost `C_i` (lost fee competition) a player pays if it
    /// merges — identical across players here; per-player costs only
    /// rescale the equilibrium point.
    pub cost: Amount,
    /// `L`: minimum size (transactions) of an acceptable new shard.
    pub lower_bound: u64,
    /// Replicator step size `η`.
    pub eta: f64,
    /// Subslots per slot, `M` (more subslots = better utility estimates).
    pub subslots: usize,
    /// Convergence tolerance `E` on the per-slot probability change.
    pub tolerance: f64,
    /// Hard cap on slots, so a mis-parameterised game cannot spin forever.
    pub max_slots: usize,
}

impl Default for MergingConfig {
    fn default() -> Self {
        MergingConfig {
            reward: Amount::from_coins(2),
            cost: Amount::from_raw(250_000_000), // 0.25 coin
            lower_bound: 22,
            eta: 0.12,
            subslots: 24,
            tolerance: 5e-3,
            max_slots: 400,
        }
    }
}

impl MergingConfig {
    /// Validates invariants the dynamics rely on, panicking on the
    /// protocol replay path (a miner replaying leader-unified inputs
    /// with a broken config is a programming error, not bad input).
    pub(crate) fn check(&self) {
        assert!(self.reward > self.cost, "reward must exceed merging cost");
        assert!(self.eta > 0.0 && self.eta < 1.0, "eta in (0,1)");
        assert!(self.subslots > 0, "need at least one subslot");
        assert!(self.tolerance > 0.0);
        assert!(self.max_slots > 0);
        assert!(self.lower_bound > 0);
    }

    /// The fallible twin of [`check`](Self::check): the same invariants
    /// as a typed [`Error`] for configuration surfaces (builders) that
    /// must reject bad values instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), Error> {
        let reject = |field: &'static str, reason: &str| {
            Err(Error::Config {
                field,
                reason: reason.into(),
            })
        };
        if self.reward <= self.cost {
            return reject("merging.reward", "reward must exceed merging cost");
        }
        if self.eta.is_nan() || self.eta <= 0.0 || self.eta >= 1.0 {
            return reject("merging.eta", "step size must lie in (0, 1)");
        }
        if self.subslots == 0 {
            return reject("merging.subslots", "need at least one subslot");
        }
        if self.tolerance.is_nan() || self.tolerance <= 0.0 {
            return reject("merging.tolerance", "tolerance must be positive");
        }
        if self.max_slots == 0 {
            return reject("merging.max_slots", "slot cap must be positive");
        }
        if self.lower_bound == 0 {
            return reject("merging.lower_bound", "size lower bound must be positive");
        }
        Ok(())
    }
}

/// Result of one run of Algorithm 3.
#[derive(Clone, Debug)]
pub struct OneShotOutcome {
    /// Indices (into the input sizes) of the players that merged.
    pub merged: Vec<usize>,
    /// Total transactions in the new shard.
    pub merged_size: u64,
    /// Whether the new shard satisfies Eq. (1).
    pub satisfied: bool,
    /// Slots until convergence (or the cap).
    pub slots: usize,
    /// Final mixed strategies.
    pub final_probs: Vec<f64>,
}

/// Result of Algorithm 1.
#[derive(Clone, Debug)]
pub struct IterativeMergeOutcome {
    /// Each new shard, as player indices into the original input.
    pub new_shards: Vec<Vec<usize>>,
    /// Players left unmerged.
    pub leftover: Vec<usize>,
    /// Total slots spent across rounds.
    pub total_slots: usize,
}

impl IterativeMergeOutcome {
    /// Number of new shards formed — the Fig. 3(g)/5(a) metric.
    pub fn new_shard_count(&self) -> usize {
        self.new_shards.len()
    }

    /// Sizes of the new shards, given the original per-player sizes.
    pub fn shard_sizes(&self, sizes: &[u64]) -> Vec<u64> {
        self.new_shards
            .iter()
            .map(|players| players.iter().map(|&i| sizes[i]).sum())
            .collect()
    }
}

/// Probability bounds during iteration. The replicator has absorbing states
/// at 0 and 1; clamping keeps exploration alive until convergence is
/// declared, mirroring the paper's "players try different strategies in
/// every play".
pub(crate) const X_MIN: f64 = 0.02;
pub(crate) const X_MAX: f64 = 0.98;

/// Runs Algorithm 3 once over `sizes` (transactions per small shard).
///
/// `initial_probs` are the "others' random initial choices" distributed by
/// the verifiable leader (Sec. IV-C); `seed` drives every coin toss, so two
/// replays with identical inputs produce identical outcomes — the property
/// parameter unification needs.
///
/// This is a thin wrapper over [`ReplicatorMergeDynamics`]; the fuzz grid
/// in `tests/dynamics_equivalence.rs` pins it draw-for-draw equal to the
/// pre-refactor direct implementation.
pub fn one_shot_merge(
    sizes: &[u64],
    initial_probs: &[f64],
    config: &MergingConfig,
    seed: u64,
) -> OneShotOutcome {
    let mut dynamics = ReplicatorMergeDynamics::new();
    dynamics.init(MergeInput {
        sizes,
        initial_probs,
        config,
        seed,
    });
    dynamics.run_to_convergence();
    dynamics.solution()
}

/// Runs Algorithm 1: iterative merging until the remaining small shards
/// cannot form a shard satisfying Eq. (1).
pub fn iterative_merge(
    sizes: &[u64],
    initial_probs: &[f64],
    config: &MergingConfig,
    seed: u64,
) -> IterativeMergeOutcome {
    config.check();
    assert_eq!(sizes.len(), initial_probs.len());
    let mut remaining: Vec<usize> = (0..sizes.len()).collect();
    let mut new_shards = Vec::new();
    let mut total_slots = 0;
    let mut round: u64 = 0;
    // A round that converges to "nobody merges" gets a few fresh seeds
    // before we give up — mixed equilibria are stochastic.
    let mut retries = 0;
    const MAX_RETRIES: usize = 4;
    let mut subset_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_CAFE);
    // One dynamics instance across all rounds: each `init` resets the
    // state, so the scratch buffers are allocated once per size class
    // rather than once per round.
    let mut dynamics = ReplicatorMergeDynamics::new();

    while remaining.iter().map(|&i| sizes[i]).sum::<u64>() >= config.lower_bound {
        // Algorithm 1 forms ONE shard per round; the round's game runs
        // among a bounded candidate set whose expected size is a few
        // multiples of the lower bound. This keeps the replicator
        // dynamics' stable band (coalition ≈ L) scale-free: with all
        // remaining players in one game, the marginal value of any single
        // player vanishes and the dynamics are absorbed at "stay".
        // Candidates are drawn from the (leader-seeded) randomness, so
        // replays remain deterministic.
        let round_players: Vec<usize> = {
            let mean_size = (remaining.iter().map(|&i| sizes[i]).sum::<u64>() as f64
                / remaining.len() as f64)
                .max(1.0);
            let cap = ((2.5 * config.lower_bound as f64 / mean_size).ceil() as usize)
                .clamp(2, remaining.len());
            if cap >= remaining.len() {
                remaining.clone()
            } else {
                let mut pool = remaining.clone();
                // Seeded partial Fisher–Yates: first `cap` entries.
                for k in 0..cap {
                    let j = k + (subset_rng.gen::<u64>() as usize) % (pool.len() - k);
                    pool.swap(k, j);
                }
                pool.truncate(cap);
                pool
            }
        };
        let round_sizes: Vec<u64> = round_players.iter().map(|&i| sizes[i]).collect();
        let round_probs: Vec<f64> = round_players.iter().map(|&i| initial_probs[i]).collect();
        let round_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round.wrapping_mul(0x2545_F491_4F6C_DD1D));
        dynamics.init(MergeInput {
            sizes: &round_sizes,
            initial_probs: &round_probs,
            config,
            seed: round_seed,
        });
        dynamics.run_to_convergence();
        let outcome = dynamics.solution();
        total_slots += outcome.slots;
        round += 1;
        if outcome.satisfied {
            let shard: Vec<usize> = outcome.merged.iter().map(|&j| round_players[j]).collect();
            let shard_set: std::collections::HashSet<usize> = shard.iter().copied().collect();
            remaining.retain(|i| !shard_set.contains(i));
            new_shards.push(shard);
            retries = 0;
        } else {
            retries += 1;
            if retries > MAX_RETRIES {
                break;
            }
        }
    }

    IterativeMergeOutcome {
        new_shards,
        leftover: remaining,
        total_slots,
    }
}

/// The optimal number of new shards (Sec. VI-E1): throughput is maximised
/// when every new shard has exactly size `L`, i.e. `⌊Σ sizes / L⌋`.
pub fn optimal_new_shard_count(sizes: &[u64], lower_bound: u64) -> u64 {
    assert!(lower_bound > 0);
    sizes.iter().sum::<u64>() / lower_bound
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(n: usize) -> Vec<f64> {
        vec![0.5; n]
    }

    fn cfg(l: u64) -> MergingConfig {
        MergingConfig {
            lower_bound: l,
            ..MergingConfig::default()
        }
    }

    #[test]
    fn empty_game_is_trivial() {
        let out = one_shot_merge(&[], &[], &cfg(10), 1);
        assert!(out.merged.is_empty());
        assert!(!out.satisfied);
    }

    #[test]
    fn deterministic_replay() {
        let sizes = vec![5, 7, 3, 9, 4, 6];
        let a = one_shot_merge(&sizes, &probs(6), &cfg(20), 42);
        let b = one_shot_merge(&sizes, &probs(6), &cfg(20), 42);
        assert_eq!(a.merged, b.merged);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.final_probs, b.final_probs);
    }

    #[test]
    fn different_seed_may_differ_but_stays_valid() {
        let sizes = vec![5, 7, 3, 9, 4, 6];
        for seed in 0..10 {
            let out = one_shot_merge(&sizes, &probs(6), &cfg(20), seed);
            let size: u64 = out.merged.iter().map(|&i| sizes[i]).sum();
            assert_eq!(size, out.merged_size);
            assert_eq!(out.satisfied, size >= 20);
        }
    }

    #[test]
    fn players_merge_when_reward_justifies_it() {
        // Five shards of 6 txs, L = 22: at least four must merge. Across
        // seeds, the game should regularly produce a satisfied shard.
        let sizes = vec![6, 6, 6, 6, 6];
        let satisfied = (0..20)
            .filter(|&s| one_shot_merge(&sizes, &probs(5), &cfg(22), s).satisfied)
            .count();
        assert!(satisfied >= 12, "only {satisfied}/20 runs satisfied (1)");
    }

    #[test]
    fn nobody_merges_when_cost_exceeds_reward_gain() {
        // Reward barely above cost and L already reachable by others:
        // free-riding dominates, so most players drift down. We only check
        // the dynamics do not explode and probabilities stay bounded.
        let config = MergingConfig {
            reward: Amount::from_raw(600),
            cost: Amount::from_raw(550),
            ..cfg(10)
        };
        let sizes = vec![9, 9, 9, 9];
        let out = one_shot_merge(&sizes, &probs(4), &config, 7);
        for &p in &out.final_probs {
            assert!((X_MIN..=X_MAX).contains(&p));
        }
    }

    #[test]
    fn impossible_bound_cannot_satisfy() {
        let sizes = vec![2, 3, 4];
        let out = one_shot_merge(&sizes, &probs(3), &cfg(100), 3);
        assert!(!out.satisfied, "9 total can never reach 100");
    }

    #[test]
    fn convergence_within_slot_cap() {
        let sizes = vec![5, 7, 3, 9, 4, 6, 8, 2];
        let out = one_shot_merge(&sizes, &probs(8), &cfg(25), 11);
        assert!(out.slots <= cfg(25).max_slots);
        // Equilibrium probabilities exist for every player.
        assert_eq!(out.final_probs.len(), 8);
    }

    #[test]
    fn iterative_merging_forms_multiple_shards() {
        // 12 shards of 6 txs = 72 total, L = 22 → optimum 3 new shards.
        let sizes = vec![6u64; 12];
        let out = iterative_merge(&sizes, &probs(12), &cfg(22), 99);
        assert!(
            (1..=3).contains(&out.new_shard_count()),
            "formed {} shards",
            out.new_shard_count()
        );
        // Every formed shard satisfies (1).
        for size in out.shard_sizes(&sizes) {
            assert!(size >= 22, "undersized shard {size}");
        }
        // No player appears twice.
        let mut all: Vec<usize> = out.new_shards.iter().flatten().copied().collect();
        all.extend(&out.leftover);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn iterative_merge_leftover_below_bound() {
        let sizes = vec![6u64; 12];
        let out = iterative_merge(&sizes, &probs(12), &cfg(22), 5);
        let leftover_total: u64 = out.leftover.iter().map(|&i| sizes[i]).sum();
        // Either everything merged, or what is left cannot reach L (modulo
        // the bounded retry cutoff).
        if !out.new_shards.is_empty() {
            assert!(
                leftover_total < 22 || out.new_shard_count() >= 1,
                "leftover {leftover_total}"
            );
        }
    }

    #[test]
    fn optimal_count_formula() {
        assert_eq!(optimal_new_shard_count(&[6; 12], 22), 3);
        assert_eq!(optimal_new_shard_count(&[5, 5], 22), 0);
        assert_eq!(optimal_new_shard_count(&[22], 22), 1);
    }

    #[test]
    fn achieves_a_reasonable_fraction_of_optimal() {
        // The Fig. 5(a) claim at small scale: ≥ 40 % of optimal new shards
        // on average (the paper reports ≈ 80 % at large scale).
        let mut total_ours = 0u64;
        let mut total_opt = 0u64;
        for seed in 0..10u64 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let sizes: Vec<u64> = (0..30).map(|_| 1 + r.gen_range(0..10u64)).collect();
            let out = iterative_merge(&sizes, &probs(30), &cfg(22), seed);
            total_ours += out.new_shard_count() as u64;
            total_opt += optimal_new_shard_count(&sizes, 22);
        }
        assert!(total_opt > 0);
        let ratio = total_ours as f64 / total_opt as f64;
        assert!(ratio >= 0.4, "ratio {ratio:.2} too far from optimal");
        assert!(ratio <= 1.0 + 1e-9, "cannot beat optimal");
    }

    #[test]
    #[should_panic(expected = "reward must exceed merging cost")]
    fn config_validation() {
        let config = MergingConfig {
            reward: Amount::from_raw(1),
            cost: Amount::from_raw(2),
            ..MergingConfig::default()
        };
        one_shot_merge(&[5], &[0.5], &config, 0);
    }

    #[test]
    fn single_large_player_can_satisfy_alone() {
        let sizes = vec![30u64];
        let out = one_shot_merge(&sizes, &[0.9], &cfg(22), 1);
        // With x clamped below 1 the coin sometimes stays, but equilibrium
        // should strongly favour merging (it alone gains G−C vs 0).
        assert!(out.final_probs[0] > 0.5, "prob {}", out.final_probs[0]);
        assert!(out.satisfied);
    }
}
