//! A unified stepping interface over the paper's two game dynamics.
//!
//! Both equilibrium searches — replicator dynamics for the merging game
//! (Algorithm 3) and best-reply dynamics for the selection game
//! (Algorithm 2) — share the same shape: seed state from leader-unified
//! inputs, iterate a deterministic update until a fixed point, read the
//! equilibrium off. [`GameDynamics`] names that shape so the epoch
//! pipeline can drive either game through one interface, count
//! iterations uniformly, and warm-start from a previous epoch's
//! equilibrium.
//!
//! Design constraints, in force for every implementor:
//!
//! * **Determinism** — `init` with identical inputs followed by the same
//!   call sequence produces bit-identical state. All randomness comes
//!   from the seed carried in the input; nothing reads clocks or ambient
//!   entropy (audit rules ND001/ND002).
//! * **Allocation-free after `init`** — buffers are sized during `init`
//!   (and reused across re-inits); `step` touches only pre-allocated
//!   scratch. This is what makes per-epoch replay cheap enough to run
//!   inside every miner's verification path (Sec. IV-C).
//! * **Wrapper equality** — [`one_shot_merge`] and
//!   [`best_reply_equilibrium`] are thin wrappers over these dynamics
//!   and are pinned draw-for-draw equal to the pre-refactor free
//!   functions by the fuzz grid in `tests/dynamics_equivalence.rs`.
//!
//! [`one_shot_merge`]: crate::merging::one_shot_merge
//! [`best_reply_equilibrium`]: crate::selection::best_reply_equilibrium

use std::collections::BTreeMap;

use cshard_crypto::Sha256;
use cshard_primitives::Hash32;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::merging::{MergingConfig, OneShotOutcome, X_MAX, X_MIN};
use crate::selection::{potential, SelectionConfig, SelectionOutcome};

/// One deterministic equilibrium search, driven step by step.
///
/// The lifecycle is `init → step* → solution`: `init` seeds the state
/// from unified inputs, each `step` applies one update round (a slot of
/// replicator updates, or one best-reply sweep), `converged` reports
/// whether another `step` could still change the state, and `solution`
/// realizes the equilibrium. `step` on a converged game is a no-op, so
/// driving loops need no special casing.
pub trait GameDynamics {
    /// Borrowed per-game inputs handed to [`init`](Self::init).
    type Input<'a>;
    /// The realized equilibrium outcome.
    type Solution;

    /// Resets the dynamics onto fresh inputs. May allocate (buffers are
    /// grown here and reused on later inits); everything after must not.
    fn init(&mut self, input: Self::Input<'_>);

    /// Applies one update round. No-op once [`converged`](Self::converged).
    fn step(&mut self);

    /// Whether the dynamics have reached a fixed point (or the
    /// configured iteration cap).
    fn converged(&self) -> bool;

    /// Update rounds applied since the last `init`.
    fn iterations(&self) -> usize;

    /// Realizes and returns the equilibrium outcome. Idempotent: the
    /// first call may consume trailing randomness from the seeded
    /// stream (the merge game's realization draws); repeats return the
    /// memoized result.
    fn solution(&mut self) -> Self::Solution;

    /// Steps until convergence and returns the iteration count.
    fn run_to_convergence(&mut self) -> usize {
        while !self.converged() {
            self.step();
        }
        self.iterations()
    }
}

/// Reusable working buffers shared by the game dynamics.
///
/// Sized on `init`, reused across epochs: re-initializing a dynamics
/// instance with same-or-smaller inputs allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct GameScratch {
    /// Per-player coin results within one subslot (merge game).
    merged_flag: Vec<bool>,
    /// Σ_s U_i(t,s) over the slot's subslots (Eq. 13 numerator).
    util_sum: Vec<f64>,
    /// Σ_s U_i·a_i over subslots where i merged (Eq. 12 numerator).
    util_merge_sum: Vec<f64>,
    /// Subslots in which player i merged this slot.
    merge_count: Vec<u32>,
    /// Per-transaction membership flags for the sweeping miner
    /// (selection game) — a dense stand-in for a hash-set, cleared
    /// after each miner so it never needs re-zeroing wholesale.
    member: Vec<bool>,
    /// `(marginal value, tx index)` pairs, re-sorted per miner.
    scored: Vec<(f64, usize)>,
    /// The sweeping miner's candidate best-reply set.
    best: Vec<usize>,
}

impl GameScratch {
    /// A fresh, empty scratch. Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the merge-game buffers to `n` players and zeroes them.
    fn reset_merge(&mut self, n: usize) {
        self.merged_flag.clear();
        self.merged_flag.resize(n, false);
        self.util_sum.clear();
        self.util_sum.resize(n, 0.0);
        self.util_merge_sum.clear();
        self.util_merge_sum.resize(n, 0.0);
        self.merge_count.clear();
        self.merge_count.resize(n, 0);
    }

    /// Grows the selection-game buffers to `t` transactions. `member`
    /// is kept all-false between uses by point-clearing.
    fn reset_select(&mut self, t: usize) {
        self.member.clear();
        self.member.resize(t, false);
        self.scored.clear();
        self.scored.reserve(t);
        self.best.clear();
    }
}

/// Inputs of one replicator-dynamics run (Algorithm 3).
#[derive(Clone, Copy, Debug)]
pub struct MergeInput<'a> {
    /// Transactions per small-shard player.
    pub sizes: &'a [u64],
    /// Leader-distributed initial merge probabilities, one per player.
    pub initial_probs: &'a [f64],
    /// Game tunables; validated (panicking) exactly like the wrapper.
    pub config: &'a MergingConfig,
    /// Drives every coin toss; identical seeds replay identically.
    pub seed: u64,
}

/// Replicator dynamics for the merging game, one slot per [`step`].
///
/// Each step runs `M` subslots of seeded coin tosses, scores Eq. (14)
/// utilities, and applies the discretized replicator update of Eq. (11)
/// to every player's merge probability. Convergence is the paper's
/// fixed-point criterion: no probability moved by more than the
/// tolerance. [`solution`] then plays the converged mixed strategies
/// (bounded realization draws from the same seeded stream) to produce
/// the stable shard.
///
/// [`step`]: GameDynamics::step
/// [`solution`]: GameDynamics::solution
#[derive(Clone, Debug)]
pub struct ReplicatorMergeDynamics {
    config: MergingConfig,
    rng: ChaCha8Rng,
    sizes: Vec<u64>,
    x: Vec<f64>,
    scratch: GameScratch,
    reward: f64,
    cost: f64,
    slots: usize,
    converged: bool,
    memoized: Option<OneShotOutcome>,
}

impl ReplicatorMergeDynamics {
    /// Draws played from the converged mixed strategies while realizing
    /// the stable shard (Sec. VI-C2); at the symmetric equilibrium the
    /// expected coalition hovers at the lower bound, so a bounded number
    /// of draws finds a satisfying one with overwhelming probability.
    const REALIZATION_DRAWS: usize = 64;

    /// An uninitialized dynamics; call [`GameDynamics::init`] before
    /// stepping.
    pub fn new() -> Self {
        ReplicatorMergeDynamics {
            config: MergingConfig::default(),
            rng: ChaCha8Rng::seed_from_u64(0),
            sizes: Vec::new(),
            x: Vec::new(),
            scratch: GameScratch::new(),
            reward: 0.0,
            cost: 0.0,
            slots: 0,
            converged: true,
            memoized: None,
        }
    }

    /// Warm-start `init`: seeds the probabilities from a previous
    /// equilibrium's final mixed strategies instead of fresh leader
    /// randomness. When the game inputs repeat, the dynamics start at
    /// (or next to) the fixed point and converge in fewer slots.
    pub fn init_warm(
        &mut self,
        sizes: &[u64],
        previous: &OneShotOutcome,
        config: &MergingConfig,
        seed: u64,
    ) {
        self.init(MergeInput {
            sizes,
            initial_probs: &previous.final_probs,
            config,
            seed,
        });
    }

    /// The current mixed strategies (clamped to the exploration band).
    pub fn probabilities(&self) -> &[f64] {
        &self.x
    }
}

impl Default for ReplicatorMergeDynamics {
    fn default() -> Self {
        Self::new()
    }
}

impl GameDynamics for ReplicatorMergeDynamics {
    type Input<'a> = MergeInput<'a>;
    type Solution = OneShotOutcome;

    fn init(&mut self, input: MergeInput<'_>) {
        input.config.check();
        assert_eq!(
            input.sizes.len(),
            input.initial_probs.len(),
            "one initial probability per player"
        );
        self.config = *input.config;
        self.reward = input.config.reward.as_f64();
        self.cost = input.config.cost.as_f64();
        self.rng = ChaCha8Rng::seed_from_u64(input.seed);
        self.sizes.clear();
        self.sizes.extend_from_slice(input.sizes);
        self.x.clear();
        self.x
            .extend(input.initial_probs.iter().map(|&p| p.clamp(X_MIN, X_MAX)));
        self.scratch.reset_merge(input.sizes.len());
        self.slots = 0;
        self.memoized = None;
        // An empty game is trivially converged: no players, no draws.
        self.converged = input.sizes.is_empty();
        if self.converged {
            self.memoized = Some(OneShotOutcome {
                merged: vec![],
                merged_size: 0,
                satisfied: false,
                slots: 0,
                final_probs: vec![],
            });
        }
    }

    fn step(&mut self) {
        if self.converged {
            return;
        }
        self.slots += 1;
        let n = self.sizes.len();
        let m = self.config.subslots;
        self.scratch.util_sum.iter_mut().for_each(|v| *v = 0.0);
        self.scratch
            .util_merge_sum
            .iter_mut()
            .for_each(|v| *v = 0.0);
        self.scratch.merge_count.iter_mut().for_each(|v| *v = 0);

        let (g, c) = (self.reward, self.cost);
        for _subslot in 0..m {
            // Line 3: every player tosses its coin.
            let mut total: u64 = 0;
            for i in 0..n {
                let merges = self.rng.gen::<f64>() < self.x[i];
                self.scratch.merged_flag[i] = merges;
                if merges {
                    total += self.sizes[i];
                }
            }
            let satisfied = total >= self.config.lower_bound;
            // Line 4: utilities via Eq. (14).
            for i in 0..n {
                let u = match (self.scratch.merged_flag[i], satisfied) {
                    (true, true) => g - c,
                    (true, false) => -c,
                    (false, true) => g,
                    (false, false) => 0.0,
                };
                self.scratch.util_sum[i] += u;
                if self.scratch.merged_flag[i] {
                    self.scratch.util_merge_sum[i] += u;
                    self.scratch.merge_count[i] += 1;
                }
            }
        }

        // Lines 5–7: averages (12), (13) and the replicator update (11).
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let avg_all = self.scratch.util_sum[i] / m as f64;
            let avg_merge = if self.scratch.merge_count[i] > 0 {
                self.scratch.util_merge_sum[i] / self.scratch.merge_count[i] as f64
            } else {
                // Never merged this slot: estimate the merge payoff from
                // the satisfaction frequency seen while staying. Staying
                // paid `g` exactly when (1) held, so avg_all/g estimates
                // P(satisfied) and merging would have paid that minus c.
                avg_all - c
            };
            // Normalise by g so eta is scale-free in the reward units.
            let delta = self.config.eta * ((avg_merge - avg_all) / g) * self.x[i];
            let next = (self.x[i] + delta).clamp(X_MIN, X_MAX);
            max_delta = max_delta.max((next - self.x[i]).abs());
            self.x[i] = next;
        }
        if max_delta < self.config.tolerance || self.slots >= self.config.max_slots {
            self.converged = true;
        }
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn iterations(&self) -> usize {
        self.slots
    }

    fn solution(&mut self) -> OneShotOutcome {
        if let Some(out) = &self.memoized {
            return out.clone();
        }
        // Play the equilibrium: the stable shard is a realization of the
        // converged mixed strategies ("at some random point, all the
        // miners are at an equilibrium state … to form a stable shard",
        // Sec. VI-C2); every draw comes from the same seeded stream,
        // keeping replays identical.
        let n = self.sizes.len();
        let mut merged: Vec<usize> = Vec::new();
        let mut merged_size: u64 = 0;
        let mut satisfied = false;
        for _ in 0..Self::REALIZATION_DRAWS {
            merged.clear();
            merged_size = 0;
            for i in 0..n {
                if self.rng.gen::<f64>() < self.x[i] {
                    merged.push(i);
                    merged_size += self.sizes[i];
                }
            }
            if merged_size >= self.config.lower_bound {
                satisfied = true;
                break;
            }
        }
        let out = OneShotOutcome {
            merged,
            merged_size,
            satisfied,
            slots: self.slots,
            final_probs: self.x.clone(),
        };
        self.memoized = Some(out.clone());
        out
    }
}

/// Inputs of one best-reply run (Algorithm 2).
#[derive(Clone, Copy, Debug)]
pub struct SelectInput<'a> {
    /// Fee of every pending transaction in the shard.
    pub fees: &'a [u64],
    /// Each miner's leader-distributed initial transaction set.
    pub initial: &'a [Vec<usize>],
    /// Game tunables.
    pub config: &'a SelectionConfig,
}

/// Best-reply dynamics for the selection game, one sweep per [`step`].
///
/// Each step sweeps every miner once, moving it to its best reply under
/// Eq. (2) whenever that strictly improves its expected profit; the
/// Rosenthal potential's monotone increase (debug-asserted per move)
/// guarantees termination at a pure strategy Nash equilibrium. The
/// sweep that applies no move is the equilibrium certificate and counts
/// toward [`iterations`] — exactly the `rounds` the wrapper reports.
///
/// [`step`]: GameDynamics::step
/// [`iterations`]: GameDynamics::iterations
#[derive(Clone, Debug)]
pub struct BestReplyDynamics {
    config: SelectionConfig,
    fees: Vec<u64>,
    capacity: usize,
    assignments: Vec<Vec<usize>>,
    load: Vec<u32>,
    phi: f64,
    rounds: usize,
    converged: bool,
    scratch: GameScratch,
}

impl BestReplyDynamics {
    /// An uninitialized dynamics; call [`GameDynamics::init`] before
    /// stepping.
    pub fn new() -> Self {
        BestReplyDynamics {
            config: SelectionConfig::default(),
            fees: Vec::new(),
            capacity: 0,
            assignments: Vec::new(),
            load: Vec::new(),
            phi: 0.0,
            rounds: 0,
            converged: true,
            scratch: GameScratch::new(),
        }
    }

    /// Warm-start `init`: seeds every miner's strategy from a previous
    /// equilibrium instead of leader-distributed initial sets. If the
    /// game inputs repeat, the previous equilibrium is still a Nash
    /// equilibrium, so the dynamics certify it in a single sweep and
    /// provably reproduce the identical assignment (pinned by
    /// `warm_start_from_equilibrium_certifies_in_one_sweep`).
    pub fn init_warm(&mut self, fees: &[u64], previous: &[Vec<usize>], config: &SelectionConfig) {
        self.init(SelectInput {
            fees,
            initial: previous,
            config,
        });
    }

    /// The current per-miner assignments (each sorted ascending).
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.assignments
    }
}

impl Default for BestReplyDynamics {
    fn default() -> Self {
        Self::new()
    }
}

impl GameDynamics for BestReplyDynamics {
    type Input<'a> = SelectInput<'a>;
    type Solution = SelectionOutcome;

    fn init(&mut self, input: SelectInput<'_>) {
        let t = input.fees.len();
        let u = input.initial.len();
        assert!(input.config.capacity > 0, "capacity must be positive");
        self.config = *input.config;
        self.capacity = input.config.capacity.min(t);
        self.fees.clear();
        self.fees.extend_from_slice(input.fees);
        self.scratch.reset_select(t);

        // Normalise initial assignments: in-range, unique, sorted,
        // right-sized. The dense `member` flags replace a per-miner
        // hash-set; flags are point-cleared after each miner.
        self.assignments.truncate(u);
        while self.assignments.len() < u {
            self.assignments.push(Vec::with_capacity(self.capacity));
        }
        for (slot, set) in self.assignments.iter_mut().zip(input.initial) {
            slot.clear();
            slot.extend(set.iter().copied().filter(|&j| j < t));
            slot.sort_unstable();
            slot.dedup();
            slot.truncate(self.capacity);
            for &j in slot.iter() {
                self.scratch.member[j] = true;
            }
            let mut fill = 0usize;
            while slot.len() < self.capacity {
                if !self.scratch.member[fill] {
                    self.scratch.member[fill] = true;
                    slot.push(fill);
                }
                fill += 1;
            }
            for &j in slot.iter() {
                self.scratch.member[j] = false;
            }
            slot.sort_unstable();
        }

        self.load.clear();
        self.load.resize(t, 0);
        for a in &self.assignments {
            for &j in a {
                self.load[j] += 1;
            }
        }
        self.phi = potential(&self.fees, &self.load);
        self.rounds = 0;
        self.converged = self.rounds >= self.config.max_rounds;
    }

    fn step(&mut self) {
        if self.converged {
            return;
        }
        self.rounds += 1;
        let t = self.fees.len();
        let u = self.assignments.len();
        let mut improved = false;
        // One best-reply sweep: "while some miner can get a higher
        // expected profit … pick a miner who can improve" (Algorithm 2).
        for i in 0..u {
            // Marginal value of tx j for miner i: fee over one more
            // holder than the *others* currently have (Eq. 2 with n_j
            // excluding i).
            for &j in &self.assignments[i] {
                self.scratch.member[j] = true;
            }
            self.scratch.scored.clear();
            for j in 0..t {
                let others = self.load[j] - u32::from(self.scratch.member[j]);
                self.scratch
                    .scored
                    .push((self.fees[j] as f64 / (others + 1) as f64, j));
            }
            // Deterministic order: best value first, ties by index. The
            // index tiebreak makes the order total, so the unstable sort
            // is as deterministic as a stable one.
            self.scratch
                .scored
                .sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            self.scratch.best.clear();
            self.scratch.best.extend(
                self.scratch
                    .scored
                    .iter()
                    .take(self.capacity)
                    .map(|&(_, j)| j),
            );
            self.scratch.best.sort_unstable();
            if self.scratch.best == self.assignments[i] {
                for &j in &self.assignments[i] {
                    self.scratch.member[j] = false;
                }
                continue;
            }
            // Profit strictly improves? (Avoid churn on exact ties.)
            let old_profit: f64 = self.assignments[i]
                .iter()
                .map(|&j| self.fees[j] as f64 / self.load[j] as f64)
                .sum();
            let new_profit: f64 = self
                .scratch
                .best
                .iter()
                .map(|&j| {
                    let others = self.load[j] - u32::from(self.scratch.member[j]);
                    self.fees[j] as f64 / (others + 1) as f64
                })
                .sum();
            for &j in &self.assignments[i] {
                self.scratch.member[j] = false;
            }
            if new_profit <= old_profit + 1e-12 {
                continue;
            }
            // Apply the move.
            for &j in &self.assignments[i] {
                self.load[j] -= 1;
            }
            for &j in &self.scratch.best {
                self.load[j] += 1;
            }
            self.assignments[i].clear();
            self.assignments[i].extend_from_slice(&self.scratch.best);
            improved = true;
            let new_phi = potential(&self.fees, &self.load);
            debug_assert!(
                new_phi > self.phi - 1e-9,
                "Rosenthal potential must not decrease: {} -> {new_phi}",
                self.phi
            );
            self.phi = new_phi;
        }
        if !improved || self.rounds >= self.config.max_rounds {
            self.converged = true;
        }
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn iterations(&self) -> usize {
        self.rounds
    }

    fn solution(&mut self) -> SelectionOutcome {
        SelectionOutcome {
            assignments: self.assignments.clone(),
            load: self.load.clone(),
            rounds: self.rounds,
            potential: self.phi,
        }
    }
}

/// Cross-epoch memo of selection equilibria, keyed by a digest of the
/// full game inputs.
///
/// Warm starts must not change what the protocol computes — only how
/// fast. The cache therefore keys on *exact* input repetition: the
/// digest covers fees, every sanitized initial set, capacity, and the
/// round cap. On a hit the stored equilibrium seeds
/// [`BestReplyDynamics::init_warm`], which certifies it in one sweep
/// and yields the bit-identical assignment the cold run would have
/// reached; on a miss the cold equilibrium is stored for next epoch.
#[derive(Clone, Debug, Default)]
pub struct SelectionWarmCache {
    entries: BTreeMap<Hash32, Vec<Vec<usize>>>,
    hits: u64,
    misses: u64,
}

impl SelectionWarmCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Digest of one selection game's complete inputs — the cache key.
    /// Versioned so a future input change cannot alias an old entry.
    pub fn key(fees: &[u64], initial: &[Vec<usize>], config: &SelectionConfig) -> Hash32 {
        let mut h = Sha256::new();
        h.update(b"selection-warm-key-v1");
        h.update((fees.len() as u64).to_be_bytes());
        for &f in fees {
            h.update(f.to_be_bytes());
        }
        h.update((initial.len() as u64).to_be_bytes());
        for set in initial {
            h.update((set.len() as u64).to_be_bytes());
            for &j in set {
                h.update((j as u64).to_be_bytes());
            }
        }
        h.update((config.capacity as u64).to_be_bytes());
        h.update((config.max_rounds as u64).to_be_bytes());
        h.finalize()
    }

    /// The cached equilibrium for `key`, counting a hit or a miss.
    pub fn lookup(&mut self, key: &Hash32) -> Option<&Vec<Vec<usize>>> {
        match self.entries.get(key) {
            Some(eq) => {
                self.hits += 1;
                Some(eq)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the equilibrium reached under `key`'s inputs.
    pub fn store(&mut self, key: Hash32, equilibrium: Vec<Vec<usize>>) {
        self.entries.insert(key, equilibrium);
    }

    /// Lookups that found a cached equilibrium.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct game inputs cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merging::one_shot_merge;
    use crate::selection::best_reply_equilibrium;

    fn seq_initial(miners: usize, capacity: usize, t: usize) -> Vec<Vec<usize>> {
        (0..miners)
            .map(|i| {
                (0..capacity)
                    .map(|k| (i * capacity + k) % t.max(1))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn merge_dynamics_match_wrapper() {
        let sizes = vec![5u64, 7, 3, 9, 4, 6];
        let probs = vec![0.5; 6];
        let cfg = MergingConfig {
            lower_bound: 20,
            ..MergingConfig::default()
        };
        let expected = one_shot_merge(&sizes, &probs, &cfg, 42);
        let mut dynamics = ReplicatorMergeDynamics::new();
        dynamics.init(MergeInput {
            sizes: &sizes,
            initial_probs: &probs,
            config: &cfg,
            seed: 42,
        });
        let iters = dynamics.run_to_convergence();
        let got = dynamics.solution();
        assert_eq!(iters, expected.slots);
        assert_eq!(got.merged, expected.merged);
        assert_eq!(got.merged_size, expected.merged_size);
        assert_eq!(got.satisfied, expected.satisfied);
        assert_eq!(got.final_probs, expected.final_probs);
        // Solution is memoized — a second call returns the same shard
        // without consuming more of the stream.
        assert_eq!(dynamics.solution().merged, expected.merged);
    }

    #[test]
    fn merge_dynamics_reuse_buffers_across_inits() {
        let cfg = MergingConfig::default();
        let mut dynamics = ReplicatorMergeDynamics::new();
        for seed in 0..4u64 {
            let sizes = vec![6u64; 8];
            let probs = vec![0.5; 8];
            dynamics.init(MergeInput {
                sizes: &sizes,
                initial_probs: &probs,
                config: &cfg,
                seed,
            });
            dynamics.run_to_convergence();
            let via_trait = dynamics.solution();
            let via_wrapper = one_shot_merge(&sizes, &probs, &cfg, seed);
            assert_eq!(via_trait.merged, via_wrapper.merged);
            assert_eq!(via_trait.slots, via_wrapper.slots);
        }
    }

    #[test]
    fn empty_merge_game_is_converged_at_init() {
        let mut dynamics = ReplicatorMergeDynamics::new();
        dynamics.init(MergeInput {
            sizes: &[],
            initial_probs: &[],
            config: &MergingConfig::default(),
            seed: 9,
        });
        assert!(dynamics.converged());
        assert_eq!(dynamics.run_to_convergence(), 0);
        let out = dynamics.solution();
        assert!(out.merged.is_empty());
        assert!(!out.satisfied);
        assert_eq!(out.slots, 0);
    }

    #[test]
    fn merge_warm_start_converges_in_fewer_slots() {
        let sizes = vec![6u64, 5, 7, 6, 4, 8, 5, 6];
        let probs = vec![0.5; 8];
        let cfg = MergingConfig {
            lower_bound: 24,
            ..MergingConfig::default()
        };
        let cold = one_shot_merge(&sizes, &probs, &cfg, 17);
        assert!(cold.slots > 1, "cold run must iterate for this test");
        let mut warm = ReplicatorMergeDynamics::new();
        warm.init_warm(&sizes, &cold, &cfg, 17);
        let warm_slots = warm.run_to_convergence();
        assert!(
            warm_slots < cold.slots,
            "warm {warm_slots} !< cold {}",
            cold.slots
        );
    }

    #[test]
    fn best_reply_dynamics_match_wrapper() {
        let fees: Vec<u64> = (1..=50).map(|i| (i * 13) % 97 + 1).collect();
        let initial = seq_initial(6, 4, fees.len());
        let cfg = SelectionConfig {
            capacity: 4,
            max_rounds: 10_000,
        };
        let expected = best_reply_equilibrium(&fees, &initial, &cfg);
        let mut dynamics = BestReplyDynamics::new();
        dynamics.init(SelectInput {
            fees: &fees,
            initial: &initial,
            config: &cfg,
        });
        let iters = dynamics.run_to_convergence();
        let got = dynamics.solution();
        assert_eq!(iters, expected.rounds);
        assert_eq!(got.assignments, expected.assignments);
        assert_eq!(got.load, expected.load);
        assert_eq!(got.potential, expected.potential);
    }

    #[test]
    fn warm_start_from_equilibrium_certifies_in_one_sweep() {
        let fees = vec![100u64, 90, 80, 70, 60, 50, 40, 30, 20, 10];
        let cfg = SelectionConfig {
            capacity: 2,
            max_rounds: 10_000,
        };
        let cold = best_reply_equilibrium(&fees, &seq_initial(5, 2, 10), &cfg);
        assert!(cold.rounds > 1, "cold run must iterate for this test");
        let mut warm = BestReplyDynamics::new();
        warm.init_warm(&fees, &cold.assignments, &cfg);
        let rounds = warm.run_to_convergence();
        let out = warm.solution();
        // Identical equilibrium, one certification sweep.
        assert_eq!(out.assignments, cold.assignments);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn empty_selection_runs_one_certification_sweep() {
        let mut dynamics = BestReplyDynamics::new();
        dynamics.init(SelectInput {
            fees: &[],
            initial: &[],
            config: &SelectionConfig {
                capacity: 3,
                max_rounds: 10_000,
            },
        });
        assert_eq!(dynamics.run_to_convergence(), 1);
        assert_eq!(dynamics.solution().assignments.len(), 0);
    }

    #[test]
    fn warm_cache_round_trip_counts_hits_and_misses() {
        let fees = vec![10u64, 20, 30, 40];
        let initial = seq_initial(2, 2, 4);
        let cfg = SelectionConfig {
            capacity: 2,
            max_rounds: 100,
        };
        let key = SelectionWarmCache::key(&fees, &initial, &cfg);
        let mut cache = SelectionWarmCache::new();
        assert!(cache.lookup(&key).is_none());
        let eq = best_reply_equilibrium(&fees, &initial, &cfg).assignments;
        cache.store(key, eq.clone());
        assert_eq!(cache.lookup(&key), Some(&eq));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // Any input change — here the capacity — changes the key.
        let other = SelectionWarmCache::key(
            &fees,
            &initial,
            &SelectionConfig {
                capacity: 3,
                max_rounds: 100,
            },
        );
        assert_ne!(key, other);
    }
}
