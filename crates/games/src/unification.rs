//! Parameter unification (Sec. IV-C).
//!
//! The problem: Algorithms 1 and 2 are *iterative* games — naively, every
//! iteration is a gossip round among all miners, and nothing stops a
//! malicious miner from ignoring the outcome. The paper's fix: a verifiable
//! leader broadcasts **identical inputs** — the randomness, the miner set,
//! the shard-size or fee vector, and everyone's random initial choices.
//! Because the algorithms are deterministic functions of those inputs,
//! every miner replays them locally and obtains the *same* outcome:
//!
//! * communication collapses to two rounds per shard (submit statistics,
//!   receive the broadcast) — the O(1) cost of Fig. 4(c); and
//! * any block contradicting the replayed outcome is provably produced by
//!   a rule-breaker and rejected (the 33 % resilience of Sec. IV-D).
//!
//! [`UnifiedParameters`] is that broadcast; its methods are the local
//! replay and the block checks.

use crate::merging::{iterative_merge, IterativeMergeOutcome, MergingConfig};
use crate::selection::{best_reply_equilibrium, SelectionConfig, SelectionOutcome};
use cshard_crypto::{sha256_concat, RandomnessBeacon, Vrf, VrfProof};
use cshard_network::{CommKind, CommStats};
use cshard_primitives::{Error, Hash32, MinerId, ShardId};
use std::fmt;

/// The per-epoch inputs to one of the two games.
#[derive(Clone, Debug)]
pub enum GameInputs {
    /// Inter-shard merging: the small shards and their transaction counts,
    /// as reported to the leader by miners in the MaxShard.
    Merge {
        /// `(shard, size)` for every small shard, in canonical id order.
        shard_sizes: Vec<(ShardId, u64)>,
        /// The game's tunables — part of the broadcast, so every replica
        /// runs the same game.
        config: MergingConfig,
    },
    /// Intra-shard selection: the pending transaction fees of one large
    /// shard, in canonical (fee-sorted, id-tie-broken) order.
    Select {
        /// The shard being load-balanced.
        shard: ShardId,
        /// Fee of each pending transaction.
        fees: Vec<u64>,
        /// The game's tunables.
        config: SelectionConfig,
    },
}

/// What a claimed block/merge can fail verification with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerificationError {
    /// The miner index is outside the unified miner set.
    UnknownMiner(usize),
    /// The claimed merge partition differs from the replayed outcome.
    MergeMismatch {
        /// The replayed (correct) new shards.
        expected_shards: usize,
        /// What the claimant asserted.
        claimed_shards: usize,
    },
    /// A transaction in the block was not in the packer's equilibrium set.
    SelectionViolation {
        /// The offending miner.
        miner: usize,
        /// The transaction index that miner had no right to pack.
        tx_index: usize,
    },
    /// The leader's VRF credential failed verification.
    BadLeaderCredential,
    /// The broadcast carried the wrong [`GameInputs`] variant for the
    /// attempted check (e.g. verifying a merge claim against selection
    /// inputs).
    WrongInputs(Error),
}

impl From<Error> for VerificationError {
    fn from(e: Error) -> Self {
        VerificationError::WrongInputs(e)
    }
}

impl fmt::Display for VerificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationError::UnknownMiner(i) => write!(f, "unknown miner index {i}"),
            VerificationError::MergeMismatch {
                expected_shards,
                claimed_shards,
            } => write!(
                f,
                "merge outcome mismatch: replay yields {expected_shards} shards, claim has {claimed_shards}"
            ),
            VerificationError::SelectionViolation { miner, tx_index } => write!(
                f,
                "miner {miner} packed transaction {tx_index} outside its equilibrium set"
            ),
            VerificationError::BadLeaderCredential => {
                write!(f, "leader VRF credential failed verification")
            }
            VerificationError::WrongInputs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerificationError {}

/// The leader's broadcast: unified inputs for one game epoch.
#[derive(Clone, Debug)]
pub struct UnifiedParameters {
    /// The leader-generated randomness all derived values come from.
    pub randomness: Hash32,
    /// The leader's VRF proof binding the randomness to the epoch (so the
    /// broadcast itself is verifiable, as in Omniledger).
    pub leader_proof: Option<VrfProof>,
    /// The current miner set.
    pub miners: Vec<MinerId>,
    /// The game inputs.
    pub inputs: GameInputs,
}

impl UnifiedParameters {
    /// Builds the broadcast from a leader's VRF evaluated on the epoch
    /// number, exactly as Sec. III-B/IV-C prescribe.
    pub fn from_leader(leader: &Vrf, epoch: u64, miners: Vec<MinerId>, inputs: GameInputs) -> Self {
        let (randomness, proof) = leader.evaluate(epoch.to_be_bytes());
        UnifiedParameters {
            randomness,
            leader_proof: Some(proof),
            miners,
            inputs,
        }
    }

    /// Builds a broadcast from raw randomness (tests / simulations that do
    /// not exercise leader election).
    pub fn from_randomness(randomness: Hash32, miners: Vec<MinerId>, inputs: GameInputs) -> Self {
        UnifiedParameters {
            randomness,
            leader_proof: None,
            miners,
            inputs,
        }
    }

    fn beacon(&self) -> RandomnessBeacon {
        RandomnessBeacon::new(self.randomness)
    }

    /// A canonical digest of the broadcast's *content*: the randomness,
    /// the miner set, and a fixed-order rendering of the game inputs (the
    /// proof is excluded — it binds the randomness, not the payload).
    ///
    /// Every honest miner hashes a received broadcast the same way, so two
    /// same-epoch broadcasts with different digests are a transferable
    /// equivocation proof against the leader: the fault subsystem treats
    /// such a leader as down and fails over to the next VRF rank.
    pub fn digest(&self) -> Hash32 {
        let mut bytes: Vec<u8> = Vec::with_capacity(64 + self.miners.len() * 4);
        bytes.extend_from_slice(self.randomness.as_bytes());
        bytes.extend_from_slice(&(self.miners.len() as u64).to_be_bytes());
        for m in &self.miners {
            bytes.extend_from_slice(&m.0.to_be_bytes());
        }
        match &self.inputs {
            GameInputs::Merge {
                shard_sizes,
                config,
            } => {
                bytes.push(1);
                bytes.extend_from_slice(&(shard_sizes.len() as u64).to_be_bytes());
                for &(shard, size) in shard_sizes {
                    bytes.extend_from_slice(&shard.0.to_be_bytes());
                    bytes.extend_from_slice(&size.to_be_bytes());
                }
                bytes.extend_from_slice(&config.reward.0.to_be_bytes());
                bytes.extend_from_slice(&config.cost.0.to_be_bytes());
                bytes.extend_from_slice(&config.lower_bound.to_be_bytes());
                bytes.extend_from_slice(&config.eta.to_bits().to_be_bytes());
                bytes.extend_from_slice(&(config.subslots as u64).to_be_bytes());
                bytes.extend_from_slice(&config.tolerance.to_bits().to_be_bytes());
                bytes.extend_from_slice(&(config.max_slots as u64).to_be_bytes());
            }
            GameInputs::Select {
                shard,
                fees,
                config,
            } => {
                bytes.push(2);
                bytes.extend_from_slice(&shard.0.to_be_bytes());
                bytes.extend_from_slice(&(fees.len() as u64).to_be_bytes());
                for fee in fees {
                    bytes.extend_from_slice(&fee.to_be_bytes());
                }
                bytes.extend_from_slice(&(config.capacity as u64).to_be_bytes());
                bytes.extend_from_slice(&(config.max_rounds as u64).to_be_bytes());
            }
        }
        sha256_concat(&[b"unified-params-digest-v1", &bytes])
    }

    /// The deterministic game seed every replica derives.
    pub fn game_seed(&self) -> u64 {
        self.beacon().derive("game-seed").leading_u64()
    }

    /// The variant name of the carried inputs, for error reporting.
    fn inputs_kind(&self) -> &'static str {
        match self.inputs {
            GameInputs::Merge { .. } => "merge",
            GameInputs::Select { .. } => "selection",
        }
    }

    fn wrong_inputs(&self, operation: &'static str, expected: &'static str) -> Error {
        Error::GameInputs {
            operation,
            expected,
            got: self.inputs_kind(),
        }
    }

    /// "Others' random initial choices" for the merging game: one merge
    /// probability per small shard.
    ///
    /// Errors when the broadcast carries selection inputs.
    pub fn initial_merge_probs(&self) -> Result<Vec<f64>, Error> {
        let GameInputs::Merge { shard_sizes, .. } = &self.inputs else {
            return Err(self.wrong_inputs("initial_merge_probs", "merge"));
        };
        let beacon = self.beacon();
        Ok((0..shard_sizes.len() as u64)
            .map(|i| {
                // Keep the strategies interior: [0.25, 0.75].
                0.25 + 0.5 * beacon.derive_unit("merge-init", i)
            })
            .collect())
    }

    /// "Others' random initial choices" for the selection game: one initial
    /// transaction set per miner.
    ///
    /// Errors when the broadcast carries merge inputs.
    pub fn initial_selections(&self) -> Result<Vec<Vec<usize>>, Error> {
        let GameInputs::Select { fees, config, .. } = &self.inputs else {
            return Err(self.wrong_inputs("initial_selections", "selection"));
        };
        let t = fees.len();
        let capacity = config.capacity.min(t);
        let beacon = self.beacon();
        Ok(self
            .miners
            .iter()
            .enumerate()
            .map(|(m, _)| {
                if t == 0 {
                    return Vec::new();
                }
                // A deterministic stride sample: distinct per miner,
                // uniform-ish over transactions.
                let offset = beacon
                    .derive_unit("select-init", m as u64)
                    .mul_add(t as f64, 0.0) as usize;
                (0..capacity).map(|k| (offset + k * 7 + m) % t).collect()
            })
            .collect())
    }

    /// Replays Algorithm 1 locally: the merge outcome every honest miner
    /// agrees on without exchanging a single in-game message.
    ///
    /// Errors when the broadcast carries selection inputs.
    pub fn merge_outcome(&self) -> Result<IterativeMergeOutcome, Error> {
        let GameInputs::Merge {
            shard_sizes,
            config,
        } = &self.inputs
        else {
            return Err(self.wrong_inputs("merge_outcome", "merge"));
        };
        let sizes: Vec<u64> = shard_sizes.iter().map(|&(_, s)| s).collect();
        Ok(iterative_merge(
            &sizes,
            &self.initial_merge_probs()?,
            config,
            self.game_seed(),
        ))
    }

    /// Replays Algorithm 2 locally: the selection equilibrium.
    ///
    /// Errors when the broadcast carries merge inputs.
    pub fn selection_outcome(&self) -> Result<SelectionOutcome, Error> {
        let GameInputs::Select { fees, config, .. } = &self.inputs else {
            return Err(self.wrong_inputs("selection_outcome", "selection"));
        };
        Ok(best_reply_equilibrium(
            fees,
            &self.initial_selections()?,
            config,
        ))
    }

    /// Verifies a claimed merge partition against the local replay.
    ///
    /// `claimed` is the partition a (possibly malicious) miner announced:
    /// per new shard, the indices of the merged small shards.
    pub fn verify_merge_claim(&self, claimed: &[Vec<usize>]) -> Result<(), VerificationError> {
        let expected = self.merge_outcome()?;
        let mut want = expected.new_shards.clone();
        let mut got = claimed.to_vec();
        for s in want.iter_mut().chain(got.iter_mut()) {
            s.sort_unstable();
        }
        want.sort();
        got.sort();
        if want == got {
            Ok(())
        } else {
            Err(VerificationError::MergeMismatch {
                expected_shards: want.len(),
                claimed_shards: got.len(),
            })
        }
    }

    /// Verifies that a block packed by `miner_index` only contains
    /// transactions from that miner's equilibrium set (a block may contain
    /// fewer — some may already be confirmed — but never others').
    pub fn verify_selection_block(
        &self,
        miner_index: usize,
        packed_tx_indices: &[usize],
    ) -> Result<(), VerificationError> {
        if miner_index >= self.miners.len() {
            return Err(VerificationError::UnknownMiner(miner_index));
        }
        let outcome = self.selection_outcome()?;
        let allowed: std::collections::HashSet<usize> =
            outcome.assignments[miner_index].iter().copied().collect();
        for &j in packed_tx_indices {
            if !allowed.contains(&j) {
                return Err(VerificationError::SelectionViolation {
                    miner: miner_index,
                    tx_index: j,
                });
            }
        }
        Ok(())
    }

    /// Books the scheme's communication into `stats`: one statistics
    /// submission per participating shard plus one broadcast reception —
    /// the constant 2 of Fig. 4(c).
    pub fn record_communication(&self, stats: &CommStats) {
        match &self.inputs {
            GameInputs::Merge { shard_sizes, .. } => {
                for &(shard, _) in shard_sizes {
                    stats.record(shard, CommKind::StatSubmission);
                    stats.record(shard, CommKind::ParameterBroadcast);
                }
            }
            GameInputs::Select { shard, .. } => {
                stats.record(*shard, CommKind::StatSubmission);
                stats.record(*shard, CommKind::ParameterBroadcast);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_crypto::sha256;

    fn miner_ids(n: u32) -> Vec<MinerId> {
        (0..n).map(MinerId::new).collect()
    }

    fn merge_params() -> UnifiedParameters {
        let shard_sizes: Vec<(ShardId, u64)> = (0..8u32)
            .map(|i| (ShardId::new(i), 4 + (i as u64 * 3) % 7))
            .collect();
        UnifiedParameters::from_randomness(
            sha256(b"epoch-7"),
            miner_ids(9),
            GameInputs::Merge {
                shard_sizes,
                config: MergingConfig {
                    lower_bound: 15,
                    ..MergingConfig::default()
                },
            },
        )
    }

    fn select_params() -> UnifiedParameters {
        UnifiedParameters::from_randomness(
            sha256(b"epoch-9"),
            miner_ids(5),
            GameInputs::Select {
                shard: ShardId::new(0),
                fees: (1..=40u64).collect(),
                config: SelectionConfig {
                    capacity: 4,
                    max_rounds: 1000,
                },
            },
        )
    }

    #[test]
    fn replay_is_identical_across_replicas() {
        // Two "miners" holding the same broadcast replay byte-identical
        // outcomes — the heart of Sec. IV-C.
        let p = merge_params();
        let a = p.merge_outcome().expect("merge inputs");
        let b = p.clone().merge_outcome().expect("merge inputs");
        assert_eq!(a.new_shards, b.new_shards);
        assert_eq!(a.leftover, b.leftover);

        let s = select_params();
        assert_eq!(
            s.selection_outcome().expect("selection inputs").assignments,
            s.selection_outcome().expect("selection inputs").assignments
        );
    }

    #[test]
    fn different_randomness_changes_derived_values() {
        let p1 = merge_params();
        let mut p2 = merge_params();
        p2.randomness = sha256(b"epoch-8");
        assert_ne!(p1.game_seed(), p2.game_seed());
        assert_ne!(
            p1.initial_merge_probs().expect("merge inputs"),
            p2.initial_merge_probs().expect("merge inputs")
        );
    }

    #[test]
    fn honest_merge_claim_verifies() {
        let p = merge_params();
        let outcome = p.merge_outcome().expect("merge inputs");
        assert_eq!(p.verify_merge_claim(&outcome.new_shards), Ok(()));
        // Order within shards and among shards must not matter.
        let mut shuffled = outcome.new_shards.clone();
        shuffled.reverse();
        for s in shuffled.iter_mut() {
            s.reverse();
        }
        assert_eq!(p.verify_merge_claim(&shuffled), Ok(()));
    }

    #[test]
    fn cheating_merge_claim_rejected() {
        let p = merge_params();
        let mut claim = p.merge_outcome().expect("merge inputs").new_shards;
        if claim.is_empty() {
            claim.push(vec![0, 1]);
        } else {
            // Claim one extra bogus shard.
            claim.push(vec![999]);
        }
        assert!(matches!(
            p.verify_merge_claim(&claim),
            Err(VerificationError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn honest_selection_block_verifies_including_subsets() {
        let p = select_params();
        let outcome = p.selection_outcome().expect("selection inputs");
        for (m, set) in outcome.assignments.iter().enumerate() {
            assert_eq!(p.verify_selection_block(m, set), Ok(()));
            // A partial block (first half of the set) is also fine.
            assert_eq!(p.verify_selection_block(m, &set[..set.len() / 2]), Ok(()));
        }
    }

    #[test]
    fn selection_violation_is_caught_and_attributed() {
        let p = select_params();
        let outcome = p.selection_outcome().expect("selection inputs");
        // Find a tx not in miner 0's set.
        let allowed: std::collections::HashSet<usize> =
            outcome.assignments[0].iter().copied().collect();
        let foreign = (0..40).find(|j| !allowed.contains(j)).expect("exists");
        assert_eq!(
            p.verify_selection_block(0, &[outcome.assignments[0][0], foreign]),
            Err(VerificationError::SelectionViolation {
                miner: 0,
                tx_index: foreign
            })
        );
    }

    #[test]
    fn unknown_miner_rejected() {
        let p = select_params();
        assert_eq!(
            p.verify_selection_block(99, &[0]),
            Err(VerificationError::UnknownMiner(99))
        );
    }

    #[test]
    fn leader_constructed_parameters_carry_a_proof() {
        let leader = Vrf::from_seed(b"leader");
        let p = UnifiedParameters::from_leader(
            &leader,
            3,
            miner_ids(4),
            GameInputs::Select {
                shard: ShardId::new(1),
                fees: vec![5, 6],
                config: SelectionConfig::default(),
            },
        );
        assert!(p.leader_proof.is_some());
        // The randomness is the leader's VRF output on the epoch.
        let (expected, _) = leader.evaluate(3u64.to_be_bytes());
        assert_eq!(p.randomness, expected);
    }

    #[test]
    fn communication_is_two_rounds_per_shard() {
        let stats = CommStats::new();
        let p = merge_params();
        p.record_communication(&stats);
        // 8 small shards × 2 rounds.
        assert_eq!(stats.total(), 16);
        for i in 0..8 {
            assert_eq!(stats.for_shard(ShardId::new(i)), 2);
        }
        assert_eq!(stats.for_kind(CommKind::StatSubmission), 8);
        assert_eq!(stats.for_kind(CommKind::ParameterBroadcast), 8);
    }

    #[test]
    fn initial_selections_are_valid_and_diverse() {
        let p = select_params();
        let sets = p.initial_selections().expect("selection inputs");
        assert_eq!(sets.len(), 5);
        for set in &sets {
            assert_eq!(set.len(), 4);
            assert!(set.iter().all(|&j| j < 40));
        }
        let distinct: std::collections::HashSet<Vec<usize>> = sets
            .iter()
            .cloned()
            .map(|mut s| {
                s.sort_unstable();
                s
            })
            .collect();
        assert!(distinct.len() >= 3, "initial sets too uniform");
    }

    #[test]
    fn initial_merge_probs_are_interior() {
        let p = merge_params();
        for prob in p.initial_merge_probs().expect("merge inputs") {
            assert!((0.25..=0.75).contains(&prob));
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        // Identical broadcasts hash identically.
        assert_eq!(merge_params().digest(), merge_params().digest());
        assert_eq!(select_params().digest(), select_params().digest());
        // Any content change — randomness, miner set, or inputs — shows.
        let mut other_rand = merge_params();
        other_rand.randomness = sha256(b"epoch-8");
        assert_ne!(merge_params().digest(), other_rand.digest());
        let mut other_miners = merge_params();
        other_miners.miners.pop();
        assert_ne!(merge_params().digest(), other_miners.digest());
        let mut other_inputs = select_params();
        if let GameInputs::Select { fees, .. } = &mut other_inputs.inputs {
            fees[0] += 1;
        }
        assert_ne!(select_params().digest(), other_inputs.digest());
        // The two input kinds never collide.
        assert_ne!(merge_params().digest(), select_params().digest());
    }

    #[test]
    fn digest_ignores_the_proof() {
        // The proof binds the randomness; equivocation detection compares
        // payloads, so a stripped proof must not change the digest.
        let leader = Vrf::from_seed(b"leader");
        let with_proof = UnifiedParameters::from_leader(
            &leader,
            3,
            miner_ids(4),
            GameInputs::Select {
                shard: ShardId::new(1),
                fees: vec![5, 6],
                config: SelectionConfig::default(),
            },
        );
        let mut stripped = with_proof.clone();
        stripped.leader_proof = None;
        assert_eq!(with_proof.digest(), stripped.digest());
    }

    #[test]
    fn wrong_input_kind_is_an_error() {
        let err = select_params().merge_outcome().unwrap_err();
        assert_eq!(
            err,
            Error::GameInputs {
                operation: "merge_outcome",
                expected: "merge",
                got: "selection",
            }
        );
        // And the verification path reports it as WrongInputs.
        assert!(matches!(
            select_params().verify_merge_claim(&[]),
            Err(VerificationError::WrongInputs(Error::GameInputs { .. }))
        ));
    }
}
