//! The paper's game-theoretic mechanisms (Sec. IV and Sec. V).
//!
//! * [`merging`] — the inter-shard merging algorithm: miners of small
//!   shards play an evolutionary cooperative game; replicator dynamics
//!   (Eq. 11) over per-player merge probabilities converge to the mixed
//!   strategy Nash equilibrium (Algorithm 3), and Algorithm 1 iterates
//!   one-shot merges until no further shard can reach the size lower bound
//!   of Eq. (1).
//! * [`selection`] — the intra-shard transaction selection algorithm: a
//!   congestion game with payoff `U_{i,j} = f_j / (n_j + 1)` (Eq. 2),
//!   solved by best-reply dynamics (Algorithm 2). The game is an exact
//!   potential game (Rosenthal), so best reply terminates in a pure
//!   strategy Nash equilibrium; the potential's monotone increase is
//!   asserted in debug builds.
//! * [`dynamics`] — the [`GameDynamics`] stepping interface both
//!   equilibrium searches implement: deterministic `init / step /
//!   converged / solution`, allocation-free after `init`, with
//!   warm-start entry points that seed from a previous epoch's
//!   equilibrium. The classic free functions above are thin wrappers
//!   over these instances.
//! * [`unification`] — the parameter unification scheme (Sec. IV-C): a
//!   VRF-elected leader broadcasts identical inputs (randomness, miner set,
//!   shard sizes / fees, initial choices), every miner replays the
//!   algorithms locally and deterministically, and blocks contradicting
//!   the replayed outcome are rejected. Replaying locally is also what
//!   eliminates the per-iteration gossip — the O(1) communication of
//!   Fig. 4(c).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod dynamics;
pub mod merging;
pub mod rewards;
pub mod selection;
pub mod unification;

pub use analysis::{
    ess_check, participation_margin, replicator_drift, satisfaction_probability, EssVerdict,
};
pub use dynamics::{
    BestReplyDynamics, GameDynamics, GameScratch, MergeInput, ReplicatorMergeDynamics, SelectInput,
    SelectionWarmCache,
};
pub use merging::{
    iterative_merge, one_shot_merge, IterativeMergeOutcome, MergingConfig, OneShotOutcome,
};
pub use rewards::{apply_shard_rewards, Payout};
pub use selection::{
    best_reply_equilibrium, greedy_assignment, potential, SelectionConfig, SelectionOutcome,
};
pub use unification::{GameInputs, UnifiedParameters, VerificationError};
