//! The intra-shard transaction selection game (Sec. IV-B, Algorithm 2).
//!
//! Miners of a large shard each select a block's worth of transactions.
//! The expected payoff of miner `i` for holding transaction `j` is Eq. (2):
//! `U_{i,j} = f_j / (n_j + 1)`, with `n_j` the number of *other* miners
//! holding `j` — every extra competitor halves, thirds, … the expected fee.
//!
//! With payoffs of the form `f_j / (count on j)` this is a congestion game
//! with the exact Rosenthal potential `Φ(σ) = Σ_j Σ_{k=1}^{c_j} f_j / k`
//! (`c_j` = total holders of `j`): any unilateral best reply increases `Φ`,
//! so best-reply dynamics terminate in a pure strategy Nash equilibrium —
//! the convergence argument the paper cites from Milchtaich/Heikkinen. The
//! monotone increase of `Φ` is `debug_assert`ed on every improving move.

use std::collections::HashSet;

use crate::dynamics::{BestReplyDynamics, GameDynamics, SelectInput};

/// Tunables of the selection game.
#[derive(Clone, Copy, Debug)]
pub struct SelectionConfig {
    /// How many transactions one miner packs into a block (the paper's gas
    /// limit admits 10 per block, Sec. VI-A).
    pub capacity: usize,
    /// Cap on best-reply sweeps (the theoretical bound O(uT²) is far above
    /// what occurs in practice; this is a safety net only).
    pub max_rounds: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            capacity: 10,
            max_rounds: 10_000,
        }
    }
}

/// The outcome of Algorithm 2.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// Per-miner selected transaction indices, each sorted ascending.
    pub assignments: Vec<Vec<usize>>,
    /// How many miners hold each transaction.
    pub load: Vec<u32>,
    /// Best-reply sweeps until no miner could improve.
    pub rounds: usize,
    /// Final Rosenthal potential.
    pub potential: f64,
}

impl SelectionOutcome {
    /// Number of *distinct* selected sets — the paper's throughput proxy
    /// for Fig. 3(h)/5(b) ("the number of transaction sets can represent
    /// the throughput improvement of the system").
    pub fn distinct_set_count(&self) -> usize {
        let mut seen: HashSet<&[usize]> = HashSet::with_capacity(self.assignments.len());
        for a in &self.assignments {
            seen.insert(a.as_slice());
        }
        seen.len()
    }

    /// Number of transactions selected by at least one miner.
    pub fn covered_tx_count(&self) -> usize {
        self.load.iter().filter(|&&c| c > 0).count()
    }

    /// A miner's expected profit under Eq. (2) at this assignment.
    pub fn expected_profit(&self, miner: usize, fees: &[u64]) -> f64 {
        self.assignments[miner]
            .iter()
            .map(|&j| fees[j] as f64 / self.load[j] as f64)
            .sum()
    }
}

/// The Rosenthal potential `Φ(σ) = Σ_j Σ_{k=1}^{c_j} f_j / k`.
pub fn potential(fees: &[u64], load: &[u32]) -> f64 {
    fees.iter()
        .zip(load)
        .map(|(&f, &c)| (1..=c).map(|k| f as f64 / k as f64).sum::<f64>())
        .sum()
}

/// Every miner greedily picks the same `capacity` highest-fee transactions —
/// the vanilla-Ethereum behaviour of Sec. II-B that serializes confirmation.
pub fn greedy_assignment(fees: &[u64], miners: usize, capacity: usize) -> SelectionOutcome {
    let mut order: Vec<usize> = (0..fees.len()).collect();
    // Descending fee, ties by index — identical at every miner.
    order.sort_by(|&a, &b| fees[b].cmp(&fees[a]).then(a.cmp(&b)));
    let mut top: Vec<usize> = order.into_iter().take(capacity).collect();
    top.sort_unstable();
    let mut load = vec![0u32; fees.len()];
    for &j in &top {
        load[j] += miners as u32;
    }
    let potential_value = potential(fees, &load);
    SelectionOutcome {
        assignments: vec![top; miners],
        load,
        rounds: 0,
        potential: potential_value,
    }
}

/// Runs Algorithm 2: best-reply dynamics from the given initial choices to
/// a pure strategy Nash equilibrium.
///
/// `initial` holds each miner's starting set (the "initial transaction set
/// selected by each miner" input of Algorithm 2, distributed by the
/// verifiable leader under parameter unification). Sets are deduplicated
/// and truncated/padded to `capacity` deterministically.
///
/// This is a thin wrapper over [`BestReplyDynamics`]; the fuzz grid in
/// `tests/dynamics_equivalence.rs` pins it move-for-move equal to the
/// pre-refactor direct implementation.
pub fn best_reply_equilibrium(
    fees: &[u64],
    initial: &[Vec<usize>],
    config: &SelectionConfig,
) -> SelectionOutcome {
    let mut dynamics = BestReplyDynamics::new();
    dynamics.init(SelectInput {
        fees,
        initial,
        config,
    });
    dynamics.run_to_convergence();
    dynamics.solution()
}

/// The optimal number of distinct sets (Sec. VI-E2): every miner validates
/// a different set, bounded by how many disjoint capacity-sized sets exist.
pub fn optimal_distinct_sets(tx_count: usize, miners: usize, capacity: usize) -> usize {
    assert!(capacity > 0);
    miners
        .min(tx_count.div_ceil(capacity))
        .max(usize::from(tx_count > 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(capacity: usize) -> SelectionConfig {
        SelectionConfig {
            capacity,
            max_rounds: 10_000,
        }
    }

    fn seq_initial(miners: usize, capacity: usize, t: usize) -> Vec<Vec<usize>> {
        // Staggered deterministic starts.
        (0..miners)
            .map(|i| {
                (0..capacity)
                    .map(|k| (i * capacity + k) % t.max(1))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn greedy_gives_one_set() {
        let fees = vec![5, 50, 20, 40, 10];
        let out = greedy_assignment(&fees, 4, 2);
        assert_eq!(out.distinct_set_count(), 1);
        assert_eq!(out.assignments[0], vec![1, 3]); // fees 50 and 40
        assert_eq!(out.load[1], 4);
        assert_eq!(out.covered_tx_count(), 2);
    }

    #[test]
    fn equilibrium_spreads_miners_over_equal_fees() {
        // 4 miners, 8 equal-fee txs, capacity 2: at equilibrium every tx
        // has exactly one holder (any overlap is an improving deviation).
        let fees = vec![10u64; 8];
        let out = best_reply_equilibrium(&fees, &seq_initial(4, 2, 8), &cfg(2));
        assert_eq!(out.covered_tx_count(), 8);
        assert!(out.load.iter().all(|&c| c == 1), "load {:?}", out.load);
        assert_eq!(out.distinct_set_count(), 4);
    }

    #[test]
    fn equilibrium_is_stable_no_profitable_deviation() {
        let fees = vec![100, 90, 80, 70, 60, 50, 40, 30, 20, 10];
        let out = best_reply_equilibrium(&fees, &seq_initial(5, 2, 10), &cfg(2));
        // Re-running best reply from the equilibrium changes nothing.
        let again = best_reply_equilibrium(&fees, &out.assignments, &cfg(2));
        assert_eq!(again.assignments, out.assignments);
        assert_eq!(again.rounds, 1, "one certification sweep, no moves");
    }

    #[test]
    fn dominant_fee_attracts_everyone() {
        // One tx worth 1000, the rest worth 1: with capacity 1, sharing the
        // big fee beats owning a small one as long as share > 1, so all
        // miners sit on tx 0 (u ≤ 500 here) — the degenerate equilibrium
        // the paper blames for Fig. 5(b)'s 50% gap.
        let mut fees = vec![1u64; 10];
        fees[0] = 1000;
        let out = best_reply_equilibrium(&fees, &seq_initial(6, 1, 10), &cfg(1));
        assert_eq!(out.load[0], 6, "load {:?}", out.load);
        assert_eq!(out.distinct_set_count(), 1);
    }

    #[test]
    fn capacity_larger_than_tx_count_is_clamped() {
        let fees = vec![3, 2, 1];
        let out = best_reply_equilibrium(&fees, &seq_initial(2, 5, 3), &cfg(5));
        for a in &out.assignments {
            assert_eq!(a.len(), 3);
        }
    }

    #[test]
    fn empty_inputs() {
        let out = best_reply_equilibrium(&[], &[], &cfg(3));
        assert_eq!(out.assignments.len(), 0);
        assert_eq!(out.distinct_set_count(), 0);
        let out = best_reply_equilibrium(&[1, 2], &[], &cfg(1));
        assert_eq!(out.assignments.len(), 0);
    }

    #[test]
    fn initial_sets_are_sanitised() {
        // Out-of-range, duplicated, oversized initial picks are repaired.
        let fees = vec![10, 20, 30];
        let initial = vec![vec![7, 7, 1, 1, 2, 2, 0]];
        let out = best_reply_equilibrium(&fees, &initial, &cfg(2));
        assert_eq!(out.assignments[0].len(), 2);
        assert!(out.assignments[0].iter().all(|&j| j < 3));
    }

    #[test]
    fn profit_accounting_matches_load() {
        let fees = vec![60, 40];
        // Two miners, capacity 1, distinct txs at equilibrium (sharing 60
        // yields 30 < 40).
        let out = best_reply_equilibrium(&fees, &[vec![0], vec![0]], &cfg(1));
        assert_eq!(out.covered_tx_count(), 2);
        let p0 = out.expected_profit(0, &fees);
        let p1 = out.expected_profit(1, &fees);
        let mut profits = [p0, p1];
        profits.sort_by(f64::total_cmp);
        assert_eq!(profits, [40.0, 60.0]);
    }

    #[test]
    fn more_miners_never_fewer_distinct_sets_on_uniform_fees() {
        let fees: Vec<u64> = (1..=200).collect();
        let mut prev = 0;
        for miners in 1..=9 {
            let out = best_reply_equilibrium(&fees, &seq_initial(miners, 10, 200), &cfg(10));
            let d = out.distinct_set_count();
            assert!(d >= prev, "miners={miners}: {d} < {prev}");
            prev = d;
        }
        // With 200 spread fees and capacity 10, nine miners find nine
        // disjoint profitable sets.
        assert_eq!(prev, 9);
    }

    #[test]
    fn optimal_distinct_sets_formula() {
        assert_eq!(optimal_distinct_sets(200, 9, 10), 9);
        assert_eq!(optimal_distinct_sets(15, 9, 10), 2);
        assert_eq!(optimal_distinct_sets(5, 3, 10), 1);
        assert_eq!(optimal_distinct_sets(0, 3, 10), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Best reply always terminates at a genuine equilibrium: no miner
        /// can improve by any unilateral set change (verified against the
        /// top-marginal-value criterion).
        #[test]
        fn prop_terminates_at_equilibrium(
            fees in proptest::collection::vec(1u64..1000, 1..40),
            miners in 1usize..8,
            capacity in 1usize..6,
        ) {
            let initial = seq_initial(miners, capacity, fees.len());
            let out = best_reply_equilibrium(&fees, &initial, &cfg(capacity));
            prop_assert!(out.rounds < cfg(capacity).max_rounds);
            // Certification: re-run yields no movement.
            let again = best_reply_equilibrium(&fees, &out.assignments, &cfg(capacity));
            prop_assert_eq!(&again.assignments, &out.assignments);
            // Load bookkeeping is consistent.
            let mut load = vec![0u32; fees.len()];
            for a in &out.assignments {
                for &j in a {
                    load[j] += 1;
                }
            }
            prop_assert_eq!(load, out.load.clone());
        }

        /// The equilibrium weakly beats all-greedy in total welfare proxy
        /// (covered transactions), since spreading never covers fewer.
        #[test]
        fn prop_covers_at_least_greedy(
            fees in proptest::collection::vec(1u64..1000, 1..40),
            miners in 1usize..8,
        ) {
            let capacity = 3usize;
            let g = greedy_assignment(&fees, miners, capacity);
            let out = best_reply_equilibrium(
                &fees,
                &seq_initial(miners, capacity, fees.len()),
                &cfg(capacity),
            );
            prop_assert!(out.covered_tx_count() >= g.covered_tx_count());
        }
    }
}
