//! Analytical tools for the merging game (Sec. V).
//!
//! The paper derives the mixed-strategy Nash equilibrium of the merging
//! game from replicator dynamics; this module provides the closed-form
//! quantities that analysis rests on, so tests and ablations can compare
//! the *simulated* dynamics of [`crate::merging`] against theory:
//!
//! * exact satisfaction probabilities `Pr(y_m ≥ L)` under independent
//!   Bernoulli participation (dynamic programming over the size
//!   distribution),
//! * expected utilities `U_{Y,i}` / `U_{N,i}` of Eqs. (8)–(9),
//! * the replicator drift `ẋ_i` of Eq. (10) and its fixed points,
//! * an evolutionarily-stable-strategy check per the Smith conditions the
//!   paper quotes.

use crate::merging::MergingConfig;

/// Exact probability that the merged coalition reaches `lower_bound`
/// transactions, when each player `j ≠ excluded` joins independently with
/// probability `probs[j]` (the player's own decision is handled by the
/// caller: pass `include` to force a player in).
///
/// Dynamic programming over total size — O(n · Σ sizes), exact.
pub fn satisfaction_probability(
    sizes: &[u64],
    probs: &[f64],
    lower_bound: u64,
    forced_in: Option<usize>,
    excluded: Option<usize>,
) -> f64 {
    assert_eq!(sizes.len(), probs.len());
    let cap = lower_bound as usize; // sizes ≥ L are all equivalent
                                    // dist[s] = P(total clamped at cap == s)
    let mut dist = vec![0.0f64; cap + 1];
    dist[0] = 1.0;
    for (j, (&size, &p)) in sizes.iter().zip(probs).enumerate() {
        if Some(j) == excluded {
            continue;
        }
        let p_join = if Some(j) == forced_in { 1.0 } else { p };
        if p_join == 0.0 {
            continue;
        }
        let mut next = vec![0.0f64; cap + 1];
        for (s, &mass) in dist.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            // Stays out.
            next[s] += mass * (1.0 - p_join);
            // Joins.
            let ns = (s + size as usize).min(cap);
            next[ns] += mass * p_join;
        }
        dist = next;
    }
    dist[cap]
}

/// Eq. (8): expected utility of player `i` when it merges,
/// `U_{Y,i} = Pr(y_m ≥ L) · G − C_i`, with the probability conditioned on
/// `i` participating.
pub fn merge_utility(sizes: &[u64], probs: &[f64], i: usize, config: &MergingConfig) -> f64 {
    let p_sat = satisfaction_probability(sizes, probs, config.lower_bound, Some(i), None);
    p_sat * config.reward.as_f64() - config.cost.as_f64()
}

/// Eq. (9): expected utility of player `i` when it stays,
/// `U_{N,i} = Pr(y_m ≥ L) · G` over the *other* players' coalition.
pub fn stay_utility(sizes: &[u64], probs: &[f64], i: usize, config: &MergingConfig) -> f64 {
    let p_sat = satisfaction_probability(sizes, probs, config.lower_bound, None, Some(i));
    p_sat * config.reward.as_f64()
}

/// The replicator drift of Eq. (10) for player `i` at the profile `probs`
/// (up to the positive scale factor η): `[Ū(Y) − Ū] · x_i` with
/// `Ū = x_i Ū(Y) + (1 − x_i) Ū(N)`, i.e.
/// `x_i (1 − x_i) (U_{Y,i} − U_{N,i})`.
pub fn replicator_drift(sizes: &[u64], probs: &[f64], i: usize, config: &MergingConfig) -> f64 {
    let x = probs[i];
    let uy = merge_utility(sizes, probs, i, config);
    let un = stay_utility(sizes, probs, i, config);
    x * (1.0 - x) * (uy - un)
}

/// The marginal value of player `i`'s participation: the increase in
/// satisfaction probability it causes, times the reward, minus the cost.
/// Positive ⇒ the drift pushes `x_i` up; the mixed equilibrium sits where
/// this crosses zero (`ẋ = 0`, Sec. V-B).
pub fn participation_margin(sizes: &[u64], probs: &[f64], i: usize, config: &MergingConfig) -> f64 {
    let with_me = satisfaction_probability(sizes, probs, config.lower_bound, Some(i), None);
    let without_me = satisfaction_probability(sizes, probs, config.lower_bound, None, Some(i));
    (with_me - without_me) * config.reward.as_f64() - config.cost.as_f64()
}

/// Verdict of an [`ess_check`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EssVerdict {
    /// The profile satisfies the equilibrium condition with strict
    /// inequality for all deviations checked — an ESS.
    Stable,
    /// Some unilateral deviation strictly improves a player — not an
    /// equilibrium at all.
    NotEquilibrium,
    /// Equilibrium holds but with ties (the stability condition of the
    /// Smith definition would need second-order checks).
    BorderlineEquilibrium,
}

/// Checks the (pure-strategy restriction of the) ESS conditions the paper
/// quotes: at profile `probs`, no player can strictly gain by deviating to
/// pure merge (`x = 1`) or pure stay (`x = 0`).
pub fn ess_check(sizes: &[u64], probs: &[f64], config: &MergingConfig, tol: f64) -> EssVerdict {
    let mut borderline = false;
    for i in 0..sizes.len() {
        let x = probs[i];
        let uy = merge_utility(sizes, probs, i, config);
        let un = stay_utility(sizes, probs, i, config);
        let current = x * uy + (1.0 - x) * un;
        let best_dev = uy.max(un);
        if best_dev > current + tol {
            return EssVerdict::NotEquilibrium;
        }
        if (best_dev - current).abs() <= tol && (uy - un).abs() > tol {
            borderline = true;
        }
    }
    if borderline {
        EssVerdict::BorderlineEquilibrium
    } else {
        EssVerdict::Stable
    }
}

/// Empirical convergence-rate measurement for Algorithm 3: the slot count
/// as a function of the tolerance `E`, which Sec. V-B bounds by
/// `O(M log(1/E))`. Returns `(tolerance, slots)` pairs.
pub fn convergence_profile(
    sizes: &[u64],
    initial_probs: &[f64],
    base: &MergingConfig,
    tolerances: &[f64],
    seed: u64,
) -> Vec<(f64, usize)> {
    tolerances
        .iter()
        .map(|&tol| {
            let cfg = MergingConfig {
                tolerance: tol,
                ..*base
            };
            let out = crate::merging::one_shot_merge(sizes, initial_probs, &cfg, seed);
            (tol, out.slots)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cshard_primitives::Amount;

    fn cfg(l: u64) -> MergingConfig {
        MergingConfig {
            lower_bound: l,
            ..MergingConfig::default()
        }
    }

    #[test]
    fn satisfaction_probability_exact_small_cases() {
        // Two players of size 5, both with p = 0.5, L = 10: only both
        // joining satisfies → 0.25.
        let p = satisfaction_probability(&[5, 5], &[0.5, 0.5], 10, None, None);
        assert!((p - 0.25).abs() < 1e-12);
        // Forcing one in: need the other → 0.5.
        let p = satisfaction_probability(&[5, 5], &[0.5, 0.5], 10, Some(0), None);
        assert!((p - 0.5).abs() < 1e-12);
        // Excluding one: the rest can never reach 10 → 0.
        let p = satisfaction_probability(&[5, 5], &[0.5, 0.5], 10, None, Some(1));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn satisfaction_probability_with_certain_players() {
        // One big certain player alone satisfies.
        let p = satisfaction_probability(&[30, 2], &[1.0, 0.0], 22, None, None);
        assert!((p - 1.0).abs() < 1e-12);
        // All zero probabilities: never.
        let p = satisfaction_probability(&[30, 2], &[0.0, 0.0], 22, None, None);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn satisfaction_monotone_in_probabilities() {
        let sizes = [4u64, 6, 3, 8, 5];
        let lo = satisfaction_probability(&sizes, &[0.3; 5], 15, None, None);
        let hi = satisfaction_probability(&sizes, &[0.7; 5], 15, None, None);
        assert!(hi > lo);
    }

    #[test]
    fn utilities_match_hand_computation() {
        // sizes [5,5], probs [0.5,0.5], L=10, G=2 coins, C=0.25 coins.
        let config = MergingConfig {
            reward: Amount::from_coins(2),
            cost: Amount::from_raw(250_000_000),
            ..cfg(10)
        };
        let g = config.reward.as_f64();
        let c = config.cost.as_f64();
        let uy = merge_utility(&[5, 5], &[0.5, 0.5], 0, &config);
        assert!((uy - (0.5 * g - c)).abs() < 1e-6);
        let un = stay_utility(&[5, 5], &[0.5, 0.5], 0, &config);
        assert!((un - 0.0).abs() < 1e-6, "others alone can never satisfy");
    }

    #[test]
    fn drift_vanishes_at_pure_strategies() {
        let sizes = [5u64, 5, 5];
        let config = cfg(10);
        let mut probs = [1.0, 0.5, 0.5];
        assert_eq!(replicator_drift(&sizes, &probs, 0, &config), 0.0);
        probs[0] = 0.0;
        assert_eq!(replicator_drift(&sizes, &probs, 0, &config), 0.0);
    }

    #[test]
    fn drift_sign_matches_participation_margin() {
        let sizes = [5u64, 5, 5, 5];
        let config = cfg(15);
        for &x in &[0.2, 0.5, 0.8] {
            let probs = [x; 4];
            let margin = participation_margin(&sizes, &probs, 0, &config);
            let drift = replicator_drift(&sizes, &probs, 0, &config);
            assert_eq!(
                margin > 0.0,
                drift > 0.0,
                "x={x}: margin {margin}, drift {drift}"
            );
        }
    }

    #[test]
    fn margin_is_negative_when_others_suffice() {
        // Others certainly satisfy without me → my margin is just −C.
        let sizes = [5u64, 30];
        let config = cfg(22);
        let margin = participation_margin(&sizes, &[0.5, 1.0], 0, &config);
        assert!((margin + config.cost.as_f64()).abs() < 1e-6);
    }

    #[test]
    fn ess_detects_profitable_deviation() {
        // A single player of size 30, L = 22: staying yields 0, merging
        // yields G − C > 0. x = 0.1 is not an equilibrium (deviating to
        // pure merge strictly gains).
        let sizes = [30u64];
        let config = cfg(22);
        assert_eq!(
            ess_check(&sizes, &[0.1], &config, 1e-9),
            EssVerdict::NotEquilibrium
        );
        // Pure merge IS an equilibrium for it.
        assert_ne!(
            ess_check(&sizes, &[1.0], &config, 1e-9),
            EssVerdict::NotEquilibrium
        );
    }

    #[test]
    fn dynamics_converge_toward_zero_drift_profiles() {
        // Run the simulated game, then check the analytic drift at its
        // final profile is small relative to the reward scale — theory and
        // simulation agree on the fixed point.
        let sizes = [6u64, 6, 6, 6, 6];
        let config = cfg(22);
        let out = crate::merging::one_shot_merge(&sizes, &[0.5; 5], &config, 3);
        let g = config.reward.as_f64();
        for i in 0..5 {
            let drift = replicator_drift(&sizes, &out.final_probs, i, &config) / g;
            assert!(
                drift.abs() < 0.08,
                "player {i}: residual drift {drift:.3} at {:?}",
                out.final_probs
            );
        }
    }

    #[test]
    fn convergence_profile_grows_with_precision() {
        // Sec. V-B: slots ~ O(log 1/E). Tighter tolerance must not need
        // fewer slots.
        let sizes = [5u64, 7, 3, 8];
        let profile = convergence_profile(&sizes, &[0.5; 4], &cfg(14), &[2e-2, 5e-3, 1e-3], 9);
        assert_eq!(profile.len(), 3);
        assert!(profile[0].1 <= profile[2].1 + 5, "{profile:?}");
    }
}
