//! The shard-reward payout (Sec. IV-A's incentive mechanism, executed).
//!
//! "The incentive is given in the form of coins, called the shard reward.
//! The rule of distributing the shard reward is: if the size of the new
//! shard satisfies (1), all the miners in small shards can get the same
//! shard reward. Like the block reward, the shard reward is also
//! transferred to miners' accounts by the system."
//!
//! This module executes that rule against the real ledger: given a merge
//! outcome and the per-shard miner rosters, it mints `G` to every
//! qualifying miner's coinbase. Because the merge outcome is replayed
//! identically by every replica (parameter unification), the payout is a
//! deterministic state transition any node can verify.

use crate::merging::{IterativeMergeOutcome, MergingConfig};
use cshard_ledger::State;
use cshard_primitives::{Address, Amount, MinerId};

/// One payout entry: which miner got how much, and for which merge round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payout {
    /// Rewarded miner.
    pub miner: MinerId,
    /// Amount minted.
    pub amount: Amount,
    /// Index of the merged shard (within the outcome) that earned it.
    pub merged_shard: usize,
}

/// Applies the shard-reward rule to `state`.
///
/// `rosters[i]` lists the miners of small shard `i` (indices aligned with
/// the sizes passed to the merging game). Every miner of every player that
/// joined a *satisfying* merged shard receives `config.reward`. Returns the
/// payout ledger for audit.
pub fn apply_shard_rewards(
    state: &mut State,
    outcome: &IterativeMergeOutcome,
    rosters: &[Vec<MinerId>],
    config: &MergingConfig,
) -> Vec<Payout> {
    let mut payouts = Vec::new();
    for (shard_idx, players) in outcome.new_shards.iter().enumerate() {
        for &player in players {
            assert!(
                player < rosters.len(),
                "merge outcome references player {player} outside the roster"
            );
            for &miner in &rosters[player] {
                state.mint(Address::miner(miner.0 as u64), config.reward);
                payouts.push(Payout {
                    miner,
                    amount: config.reward,
                    merged_shard: shard_idx,
                });
            }
        }
    }
    payouts
}

/// Total coins a payout batch minted.
pub fn total_paid(payouts: &[Payout]) -> Amount {
    payouts.iter().map(|p| p.amount).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merging::iterative_merge;

    fn rosters(n: usize) -> Vec<Vec<MinerId>> {
        // Shard i has i%2 + 1 miners with distinct ids.
        let mut next = 0u32;
        (0..n)
            .map(|i| {
                (0..=(i % 2))
                    .map(|_| {
                        let id = MinerId::new(next);
                        next += 1;
                        id
                    })
                    .collect()
            })
            .collect()
    }

    fn config(l: u64) -> MergingConfig {
        MergingConfig {
            lower_bound: l,
            ..MergingConfig::default()
        }
    }

    #[test]
    fn merged_miners_get_paid_leftovers_do_not() {
        let sizes = vec![6u64; 8];
        let cfg = config(20);
        let outcome = iterative_merge(&sizes, &[0.5; 8], &cfg, 3);
        assert!(outcome.new_shard_count() >= 1, "need a merge to test");
        let rosters = rosters(8);
        let mut state = State::new();
        let payouts = apply_shard_rewards(&mut state, &outcome, &rosters, &cfg);

        let merged_players: std::collections::HashSet<usize> =
            outcome.new_shards.iter().flatten().copied().collect();
        // Every miner of every merged player got exactly one payout.
        let expected: usize = merged_players.iter().map(|&p| rosters[p].len()).sum();
        assert_eq!(payouts.len(), expected);
        // Leftover players' miners hold zero balance.
        for &p in &outcome.leftover {
            for m in &rosters[p] {
                assert_eq!(
                    state.balance_of(Address::miner(m.0 as u64)),
                    Amount::ZERO,
                    "unmerged miner {m} must not be paid"
                );
            }
        }
        // Conservation: everything minted is accounted for.
        assert_eq!(state.minted(), total_paid(&payouts));
        assert_eq!(state.total_balance(), state.minted());
    }

    #[test]
    fn equal_reward_for_every_qualifying_miner() {
        let sizes = vec![10u64, 12];
        let cfg = config(20);
        let outcome = iterative_merge(&sizes, &[0.6, 0.6], &cfg, 9);
        if outcome.new_shard_count() == 0 {
            return; // stochastic miss; covered by other seeds elsewhere
        }
        let rosters = rosters(2);
        let mut state = State::new();
        let payouts = apply_shard_rewards(&mut state, &outcome, &rosters, &cfg);
        assert!(payouts.iter().all(|p| p.amount == cfg.reward));
    }

    #[test]
    fn empty_outcome_pays_nothing() {
        let outcome = IterativeMergeOutcome {
            new_shards: vec![],
            leftover: vec![0, 1],
            total_slots: 0,
        };
        let mut state = State::new();
        let payouts = apply_shard_rewards(&mut state, &outcome, &rosters(2), &config(10));
        assert!(payouts.is_empty());
        assert_eq!(state.minted(), Amount::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside the roster")]
    fn roster_mismatch_is_loud() {
        let outcome = IterativeMergeOutcome {
            new_shards: vec![vec![5]],
            leftover: vec![],
            total_slots: 0,
        };
        let mut state = State::new();
        apply_shard_rewards(&mut state, &outcome, &rosters(2), &config(10));
    }
}
