//! Pins the `GameDynamics` reimplementations to the pre-refactor free
//! functions, draw for draw.
//!
//! `one_shot_merge` and `best_reply_equilibrium` are now thin wrappers
//! over `ReplicatorMergeDynamics` / `BestReplyDynamics`. This test keeps
//! frozen copies of the original direct implementations (verbatim from
//! the pre-refactor `merging.rs` / `selection.rs`) as references and
//! fuzzes both games over seeded grids of ≥ 200 cases, requiring every
//! output field to match exactly — same RNG stream consumption, same
//! tie-breaks, same iteration counts. If the dynamics ever drift, the
//! golden run-report fingerprints would shift; this catches the drift at
//! the game layer with a precise counterexample seed.

use std::collections::HashSet;

use cshard_games::merging::{one_shot_merge, MergingConfig, OneShotOutcome};
use cshard_games::selection::{
    best_reply_equilibrium, potential, SelectionConfig, SelectionOutcome,
};
use cshard_primitives::Amount;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const X_MIN: f64 = 0.02;
const X_MAX: f64 = 0.98;

/// The original Algorithm 3 implementation, frozen as the reference.
fn reference_one_shot_merge(
    sizes: &[u64],
    initial_probs: &[f64],
    config: &MergingConfig,
    seed: u64,
) -> OneShotOutcome {
    assert_eq!(sizes.len(), initial_probs.len());
    let n = sizes.len();
    if n == 0 {
        return OneShotOutcome {
            merged: vec![],
            merged_size: 0,
            satisfied: false,
            slots: 0,
            final_probs: vec![],
        };
    }

    let g = config.reward.as_f64();
    let c = config.cost.as_f64();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x: Vec<f64> = initial_probs
        .iter()
        .map(|&p| p.clamp(X_MIN, X_MAX))
        .collect();

    let m = config.subslots;
    let mut slots = 0;
    let mut merged_flag = vec![false; n];
    let mut util_sum = vec![0.0f64; n];
    let mut util_merge_sum = vec![0.0f64; n];
    let mut merge_count = vec![0u32; n];

    while slots < config.max_slots {
        slots += 1;
        util_sum.iter_mut().for_each(|v| *v = 0.0);
        util_merge_sum.iter_mut().for_each(|v| *v = 0.0);
        merge_count.iter_mut().for_each(|v| *v = 0);

        for _subslot in 0..m {
            let mut total: u64 = 0;
            for i in 0..n {
                let merges = rng.gen::<f64>() < x[i];
                merged_flag[i] = merges;
                if merges {
                    total += sizes[i];
                }
            }
            let satisfied = total >= config.lower_bound;
            for i in 0..n {
                let u = match (merged_flag[i], satisfied) {
                    (true, true) => g - c,
                    (true, false) => -c,
                    (false, true) => g,
                    (false, false) => 0.0,
                };
                util_sum[i] += u;
                if merged_flag[i] {
                    util_merge_sum[i] += u;
                    merge_count[i] += 1;
                }
            }
        }

        let mut max_delta = 0.0f64;
        for i in 0..n {
            let avg_all = util_sum[i] / m as f64;
            let avg_merge = if merge_count[i] > 0 {
                util_merge_sum[i] / merge_count[i] as f64
            } else {
                avg_all - c
            };
            let delta = config.eta * ((avg_merge - avg_all) / g) * x[i];
            let next = (x[i] + delta).clamp(X_MIN, X_MAX);
            max_delta = max_delta.max((next - x[i]).abs());
            x[i] = next;
        }
        if max_delta < config.tolerance {
            break;
        }
    }

    const REALIZATION_DRAWS: usize = 64;
    let mut merged: Vec<usize> = Vec::new();
    let mut merged_size: u64 = 0;
    let mut satisfied = false;
    for _ in 0..REALIZATION_DRAWS {
        merged.clear();
        merged_size = 0;
        for i in 0..n {
            if rng.gen::<f64>() < x[i] {
                merged.push(i);
                merged_size += sizes[i];
            }
        }
        if merged_size >= config.lower_bound {
            satisfied = true;
            break;
        }
    }
    OneShotOutcome {
        satisfied,
        merged,
        merged_size,
        slots,
        final_probs: x,
    }
}

/// The original Algorithm 2 implementation, frozen as the reference.
fn reference_best_reply(
    fees: &[u64],
    initial: &[Vec<usize>],
    config: &SelectionConfig,
) -> SelectionOutcome {
    let t = fees.len();
    let u = initial.len();
    assert!(config.capacity > 0);
    let capacity = config.capacity.min(t);

    let mut assignments: Vec<Vec<usize>> = initial
        .iter()
        .map(|set| {
            let mut s: Vec<usize> = set.iter().copied().filter(|&j| j < t).collect();
            s.sort_unstable();
            s.dedup();
            s.truncate(capacity);
            let mut have: HashSet<usize> = s.iter().copied().collect();
            let mut fill = 0usize;
            while s.len() < capacity {
                if have.insert(fill) {
                    s.push(fill);
                }
                fill += 1;
            }
            s.sort_unstable();
            s
        })
        .collect();

    let mut load = vec![0u32; t];
    for a in &assignments {
        for &j in a {
            load[j] += 1;
        }
    }

    let mut rounds = 0;
    let mut phi = potential(fees, &load);
    while rounds < config.max_rounds {
        rounds += 1;
        let mut improved = false;
        #[allow(clippy::needless_range_loop)]
        for i in 0..u {
            let current: HashSet<usize> = assignments[i].iter().copied().collect();
            let mut scored: Vec<(f64, usize)> = (0..t)
                .map(|j| {
                    let others = load[j] - u32::from(current.contains(&j));
                    (fees[j] as f64 / (others + 1) as f64, j)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("fees are finite")
                    .then(a.1.cmp(&b.1))
            });
            let mut best: Vec<usize> = scored.iter().take(capacity).map(|&(_, j)| j).collect();
            best.sort_unstable();
            if best == assignments[i] {
                continue;
            }
            let old_profit: f64 = assignments[i]
                .iter()
                .map(|&j| fees[j] as f64 / load[j] as f64)
                .sum();
            let new_profit: f64 = best
                .iter()
                .map(|&j| {
                    let others = load[j] - u32::from(current.contains(&j));
                    fees[j] as f64 / (others + 1) as f64
                })
                .sum();
            if new_profit <= old_profit + 1e-12 {
                continue;
            }
            for &j in &assignments[i] {
                load[j] -= 1;
            }
            for &j in &best {
                load[j] += 1;
            }
            assignments[i] = best;
            improved = true;
            phi = potential(fees, &load);
        }
        if !improved {
            break;
        }
    }

    SelectionOutcome {
        assignments,
        load,
        rounds,
        potential: phi,
    }
}

fn assert_merge_equal(case: u64, got: &OneShotOutcome, want: &OneShotOutcome) {
    assert_eq!(got.merged, want.merged, "case {case}: merged set differs");
    assert_eq!(got.merged_size, want.merged_size, "case {case}");
    assert_eq!(got.satisfied, want.satisfied, "case {case}");
    assert_eq!(got.slots, want.slots, "case {case}: slot count differs");
    assert_eq!(
        got.final_probs, want.final_probs,
        "case {case}: probabilities differ"
    );
}

#[test]
fn merge_wrapper_matches_reference_over_200_seeded_cases() {
    for case in 0..200u64 {
        let mut gen = ChaCha8Rng::seed_from_u64(0xA1B2_0000 ^ case);
        let n = 1 + (gen.gen::<u64>() % 12) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| 1 + gen.gen::<u64>() % 12).collect();
        let probs: Vec<f64> = (0..n).map(|_| gen.gen::<f64>()).collect();
        let config = MergingConfig {
            lower_bound: 5 + gen.gen::<u64>() % 30,
            eta: 0.05 + (gen.gen::<u64>() % 20) as f64 * 0.01,
            subslots: 8 + (gen.gen::<u64>() % 24) as usize,
            ..MergingConfig::default()
        };
        let seed = gen.gen::<u64>();
        let want = reference_one_shot_merge(&sizes, &probs, &config, seed);
        let got = one_shot_merge(&sizes, &probs, &config, seed);
        assert_merge_equal(case, &got, &want);
    }
}

#[test]
fn merge_wrapper_matches_reference_on_degenerate_shapes() {
    let cfg = MergingConfig::default();
    // Empty game, single player, all-identical sizes, extreme probs.
    let shapes: Vec<(Vec<u64>, Vec<f64>)> = vec![
        (vec![], vec![]),
        (vec![30], vec![0.9]),
        (vec![30], vec![0.0]),
        (vec![7; 9], vec![1.0; 9]),
        (vec![1; 4], vec![0.5; 4]),
    ];
    for (case, (sizes, probs)) in shapes.into_iter().enumerate() {
        for seed in [0u64, 1, u64::MAX] {
            let want = reference_one_shot_merge(&sizes, &probs, &cfg, seed);
            let got = one_shot_merge(&sizes, &probs, &cfg, seed);
            assert_merge_equal(case as u64, &got, &want);
        }
    }
}

fn assert_selection_equal(case: u64, got: &SelectionOutcome, want: &SelectionOutcome) {
    assert_eq!(
        got.assignments, want.assignments,
        "case {case}: assignments differ"
    );
    assert_eq!(got.load, want.load, "case {case}: load differs");
    assert_eq!(got.rounds, want.rounds, "case {case}: rounds differ");
    assert_eq!(
        got.potential, want.potential,
        "case {case}: potential differs"
    );
}

#[test]
fn best_reply_wrapper_matches_reference_over_200_seeded_cases() {
    for case in 0..200u64 {
        let mut gen = ChaCha8Rng::seed_from_u64(0xC3D4_0000 ^ case);
        let t = 1 + (gen.gen::<u64>() % 40) as usize;
        let fees: Vec<u64> = (0..t).map(|_| gen.gen::<u64>() % 1000).collect();
        let miners = 1 + (gen.gen::<u64>() % 8) as usize;
        let capacity = 1 + (gen.gen::<u64>() % 6) as usize;
        // Deliberately dirty initial sets: out of range, duplicated,
        // over- and under-sized — the sanitizer must agree too.
        let initial: Vec<Vec<usize>> = (0..miners)
            .map(|_| {
                let len = (gen.gen::<u64>() % (2 * capacity as u64 + 1)) as usize;
                (0..len)
                    .map(|_| (gen.gen::<u64>() % (t as u64 + 3)) as usize)
                    .collect()
            })
            .collect();
        let config = SelectionConfig {
            capacity,
            max_rounds: 10_000,
        };
        let want = reference_best_reply(&fees, &initial, &config);
        let got = best_reply_equilibrium(&fees, &initial, &config);
        assert_selection_equal(case, &got, &want);
    }
}

#[test]
fn best_reply_wrapper_matches_reference_on_degenerate_shapes() {
    let cfg = SelectionConfig {
        capacity: 3,
        max_rounds: 10_000,
    };
    let cases: Vec<(Vec<u64>, Vec<Vec<usize>>)> = vec![
        (vec![], vec![]),                           // nothing at all
        (vec![1, 2], vec![]),                       // txs but no miners
        (vec![0, 0, 0, 0], vec![vec![0], vec![1]]), // all-zero fees
        (vec![5], vec![vec![0], vec![0], vec![0]]), // one tx, many miners
        (vec![9; 6], vec![vec![9, 9, 9]; 4]),       // out-of-range duplicates
    ];
    for (case, (fees, initial)) in cases.into_iter().enumerate() {
        let want = reference_best_reply(&fees, &initial, &cfg);
        let got = best_reply_equilibrium(&fees, &initial, &cfg);
        assert_selection_equal(case as u64, &got, &want);
    }
}

#[test]
fn configs_with_tight_round_caps_agree_on_truncation() {
    // When the cap bites, both implementations must stop at the same
    // sweep with the same partial state.
    let fees: Vec<u64> = (1..=60).map(|i| i * 7 % 101).collect();
    let initial: Vec<Vec<usize>> = (0..7).map(|i| vec![i, i + 1, i + 2]).collect();
    for max_rounds in 1..=6 {
        let cfg = SelectionConfig {
            capacity: 3,
            max_rounds,
        };
        let want = reference_best_reply(&fees, &initial, &cfg);
        let got = best_reply_equilibrium(&fees, &initial, &cfg);
        assert_selection_equal(max_rounds as u64, &got, &want);
    }
}

#[test]
fn reward_cost_margins_do_not_break_equivalence() {
    // Sweep the merge game's payoff margin, including near-degenerate
    // reward ≈ cost games where the dynamics drift toward "stay".
    for case in 0..24u64 {
        let config = MergingConfig {
            reward: Amount::from_raw(600 + case * 50),
            cost: Amount::from_raw(550),
            lower_bound: 10,
            ..MergingConfig::default()
        };
        let sizes = vec![9u64, 9, 9, 9];
        let probs = vec![0.5; 4];
        let want = reference_one_shot_merge(&sizes, &probs, &config, case);
        let got = one_shot_merge(&sizes, &probs, &config, case);
        assert_merge_equal(case, &got, &want);
    }
}
