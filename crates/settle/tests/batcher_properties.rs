//! Property tests for the settlement batcher: the invariants the driver
//! wrappers (`SettlingShardDriver`, the batched ChainSpace mode) and the
//! fault harness lean on.
//!
//! A miniature event loop (`drive`) replays an arbitrary submission
//! schedule against a [`SettlementBatcher`], honouring the batcher's
//! arming protocol exactly as the runtime does: every [`Submit::Arm`] /
//! [`FlushOutcome::Deferred`] schedules a flush event, ties between a
//! flush and a submission at the same instant fire the flush first, and
//! the loop drains scheduled events after the last submission. Over that
//! loop:
//!
//! * no transfer is lost or duplicated, for any interleaving of
//!   submissions, cap flushes, timeouts, and blackout windows;
//! * replaying the same schedule yields bit-identical batches (flush
//!   order is a pure function of the submission sequence);
//! * `batch_cap = 1` degenerates to the unbatched ledger, tx-for-tx at
//!   the submission instant;
//! * absent blackouts, no batch exceeds the cap, and no flush ever
//!   lands inside a blackout window.

use cshard_primitives::{ShardId, SimTime};
use cshard_settle::{Batch, FlushOutcome, SettleConfig, SettlementBatcher, Submit};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One submission: `(time, dest, transfer id)`. Ids are assigned by the
/// driver so they are unique per schedule.
type Schedule = Vec<(SimTime, ShardId, u64)>;

/// Replays `schedule` (already time-sorted) against a fresh batcher,
/// returning every flushed batch in emission order.
fn drive(
    config: &SettleConfig,
    blackouts: &[(ShardId, Vec<(SimTime, SimTime)>)],
    schedule: &Schedule,
) -> (Vec<Batch>, SettlementBatcher) {
    let mut b = SettlementBatcher::new(ShardId::new(0), config);
    for (dest, windows) in blackouts {
        b.set_blackouts(*dest, windows.clone());
    }
    let mut flushes: BTreeSet<(SimTime, ShardId)> = BTreeSet::new();
    let mut out = Vec::new();
    let mut next = 0usize;
    loop {
        // Fire every scheduled flush due before the next submission;
        // at a tie the flush fires first (it was scheduled earlier).
        let horizon = schedule.get(next).map(|&(t, _, _)| t);
        match flushes.first().copied() {
            Some((at, dest)) if horizon.is_none_or(|h| at <= h) => {
                flushes.remove(&(at, dest));
                match b.on_flush(at, dest) {
                    FlushOutcome::Stale => {}
                    FlushOutcome::Deferred(later) => {
                        flushes.insert((later, dest));
                    }
                    FlushOutcome::Flushed(batch) => out.push(batch),
                }
            }
            _ => {
                let Some(&(now, dest, id)) = schedule.get(next) else {
                    break;
                };
                next += 1;
                match b.submit(now, dest, id) {
                    Submit::Queued => {}
                    Submit::Arm(at) => {
                        flushes.insert((at, dest));
                    }
                    Submit::Flushed(batch) => out.push(batch),
                }
            }
        }
    }
    (out, b)
}

/// Strategy: a time-sorted schedule of up to 64 transfers over 3
/// destinations, with unique ids in submission order.
fn schedules() -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((0u64..5_000, 1u32..4), 1..64).prop_map(|raw| {
        let mut times: Vec<(u64, u32)> = raw;
        times.sort_unstable();
        times
            .into_iter()
            .enumerate()
            .map(|(i, (t, d))| (SimTime::from_millis(t), ShardId::new(d), i as u64))
            .collect()
    })
}

/// Strategy: up to a few blackout windows per destination, possibly
/// overlapping, spanning the schedule's time range and beyond. Windows
/// are merged per destination (`set_blackouts` replaces, not appends).
fn blackout_plans() -> impl Strategy<Value = Vec<(ShardId, Vec<(SimTime, SimTime)>)>> {
    proptest::collection::vec(
        (
            1u32..4,
            proptest::collection::vec((0u64..6_000, 1u64..4_000), 0..3),
        ),
        0..3,
    )
    .prop_map(|raw| {
        let mut by_dest: std::collections::BTreeMap<ShardId, Vec<(SimTime, SimTime)>> =
            std::collections::BTreeMap::new();
        for (d, windows) in raw {
            by_dest.entry(ShardId::new(d)).or_default().extend(
                windows.into_iter().map(|(from, len)| {
                    (SimTime::from_millis(from), SimTime::from_millis(from + len))
                }),
            );
        }
        by_dest.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn no_transfer_is_lost_or_duplicated(
        schedule in schedules(),
        cap in 1usize..8,
        blackouts in blackout_plans(),
    ) {
        let config = SettleConfig::batched(cap);
        let (batches, b) = drive(&config, &blackouts, &schedule);
        // Everything settled: the batcher drained and the stats agree.
        prop_assert!(b.is_empty());
        prop_assert_eq!(b.stats().txs_settled as usize, schedule.len());
        // Exactly once: flushed ids are a permutation of submitted ids.
        let mut ids: Vec<u64> = batches.iter().flat_map(|x| x.transfers.clone()).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..schedule.len() as u64).collect::<Vec<_>>());
        // And each batch is internally consistent.
        for batch in &batches {
            prop_assert_eq!(batch.source, ShardId::new(0));
            prop_assert!(!batch.transfers.is_empty());
        }
    }

    #[test]
    fn replay_is_bit_identical(
        schedule in schedules(),
        cap in 1usize..8,
        blackouts in blackout_plans(),
    ) {
        let config = SettleConfig::batched(cap);
        let (first, _) = drive(&config, &blackouts, &schedule);
        let (second, _) = drive(&config, &blackouts, &schedule);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn cap_one_is_the_unbatched_ledger_tx_for_tx(schedule in schedules()) {
        let (batches, _) = drive(&SettleConfig::batched(1), &[], &schedule);
        // One batch per submission, at the submission instant, in order.
        prop_assert_eq!(batches.len(), schedule.len());
        for (batch, &(t, dest, id)) in batches.iter().zip(&schedule) {
            prop_assert_eq!(batch.at, t);
            prop_assert_eq!(batch.dest, dest);
            prop_assert_eq!(&batch.transfers, &vec![id]);
        }
        // A disabled config is the same degenerate ledger.
        let (disabled, _) = drive(&SettleConfig::disabled(), &[], &schedule);
        prop_assert_eq!(disabled, batches);
    }

    #[test]
    fn absent_blackouts_no_batch_exceeds_the_cap(
        schedule in schedules(),
        cap in 1usize..8,
    ) {
        let (batches, _) = drive(&SettleConfig::batched(cap), &[], &schedule);
        for batch in &batches {
            prop_assert!(
                batch.transfers.len() <= cap,
                "batch of {} exceeds cap {}", batch.transfers.len(), cap
            );
        }
    }

    #[test]
    fn no_flush_lands_inside_a_blackout(
        schedule in schedules(),
        cap in 1usize..8,
        blackouts in blackout_plans(),
    ) {
        let config = SettleConfig::batched(cap);
        let (batches, _) = drive(&config, &blackouts, &schedule);
        for batch in &batches {
            let blacked = blackouts
                .iter()
                .filter(|(d, _)| *d == batch.dest)
                .flat_map(|(_, ws)| ws)
                .any(|&(from, until)| from <= batch.at && batch.at < until);
            prop_assert!(
                !blacked,
                "batch to {:?} flushed at {:?} inside a blackout", batch.dest, batch.at
            );
        }
    }
}
