//! The per-source settlement batcher.
//!
//! One batcher serves one source shard and keys pending transfers by
//! destination shard — the `(source, dest)` pair granularity at which
//! crosslinks ship and partitions black out. The batcher owns no clock
//! and no event queue: [`SettlementBatcher::submit`] and
//! [`SettlementBatcher::on_flush`] are pure state transitions over the
//! caller-supplied simulated `now`, and every deferred flush is handed
//! back as an absolute re-arm time for the caller to schedule. Iteration
//! state lives in `BTreeMap`s only (ND003), so batch emission order is a
//! pure function of the submission sequence.

use crate::config::SettleConfig;
use crate::stats::SettleStats;
use cshard_primitives::{ShardId, SimTime};
use std::collections::BTreeMap;

/// One flushed crosslink: every transfer the source shard settled toward
/// `dest` in this batch, in submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// The settling (source) shard.
    pub source: ShardId,
    /// The destination shard.
    pub dest: ShardId,
    /// Caller-scoped transfer ids, in submission order.
    pub transfers: Vec<u64>,
    /// Simulated flush time.
    pub at: SimTime,
}

/// What a submission did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Submit {
    /// The transfer joined an already-armed batch; nothing to schedule.
    Queued,
    /// The batch (re-)armed its flush deadline: the caller must schedule
    /// a flush event for this destination at the given absolute time.
    Arm(SimTime),
    /// The submission filled the batch and it flushed synchronously.
    Flushed(Batch),
}

/// What a fired flush event did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// The event was superseded (batch already flushed by cap, or its
    /// deadline moved): ignore it. Staleness is how at-most-once flushing
    /// survives duplicate or outdated events in the queue.
    Stale,
    /// The pair is blacked out at the flush instant: the deadline moved
    /// to the returned heal time and the caller must schedule a new flush
    /// event there. Deferral never hastens a flush.
    Deferred(SimTime),
    /// The batch flushed: book one crosslink and settle its transfers.
    Flushed(Batch),
}

/// Pending state of one `(source, dest)` pair.
#[derive(Debug, Default)]
struct PairState {
    /// Unsettled transfer ids, in submission order.
    transfers: Vec<u64>,
    /// The one live flush deadline. An event fires *this* batch only if
    /// its timestamp equals the recorded deadline; every other flush
    /// event for the pair is stale.
    deadline: Option<SimTime>,
}

/// Per-source crosslink batching, keyed by destination shard.
///
/// Invariant (what makes the driver wrapping this never stall): whenever
/// a pair has pending transfers, `deadline` is `Some(t)` and the caller
/// holds a scheduled flush event at `t` — `submit` arms one on the first
/// transfer of every batch, and `on_flush` re-arms on deferral.
#[derive(Debug)]
pub struct SettlementBatcher {
    source: ShardId,
    batch_cap: usize,
    timeout: SimTime,
    pairs: BTreeMap<ShardId, PairState>,
    /// Blackout windows per destination (`[from, until)`), precomputed by
    /// the harness from the fault plan's partitions of either endpoint.
    blackouts: BTreeMap<ShardId, Vec<(SimTime, SimTime)>>,
    stats: SettleStats,
}

impl SettlementBatcher {
    /// A batcher for `source` under `config`. A disabled config batches
    /// nothing: `batch_cap` is treated as 1, so every submission flushes
    /// immediately — the unbatched per-transfer ledger.
    pub fn new(source: ShardId, config: &SettleConfig) -> Self {
        let batch_cap = if config.enabled {
            config.batch_cap.max(1)
        } else {
            1
        };
        SettlementBatcher {
            source,
            batch_cap,
            timeout: config.timeout,
            pairs: BTreeMap::new(),
            blackouts: BTreeMap::new(),
            stats: SettleStats::new(),
        }
    }

    /// Installs the blackout windows of the `(source, dest)` pair —
    /// typically the union of both endpoints' partition windows from a
    /// fault plan. Windows are half-open `[from, until)`.
    pub fn set_blackouts(&mut self, dest: ShardId, windows: Vec<(SimTime, SimTime)>) {
        if windows.is_empty() {
            self.blackouts.remove(&dest);
        } else {
            self.blackouts.insert(dest, windows);
        }
    }

    /// The source shard this batcher settles for.
    pub fn source(&self) -> ShardId {
        self.source
    }

    /// The effective flush cap (1 when constructed disabled).
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// The flush accounting so far.
    pub fn stats(&self) -> SettleStats {
        self.stats
    }

    /// True when no pair holds an unsettled transfer — the driver-level
    /// `done()` conjunct that keeps phase 1 alive until the final flush.
    pub fn is_empty(&self) -> bool {
        self.pairs.values().all(|p| p.transfers.is_empty())
    }

    /// Unsettled transfers currently pending toward `dest`.
    pub fn pending(&self, dest: ShardId) -> usize {
        self.pairs.get(&dest).map_or(0, |p| p.transfers.len())
    }

    /// If the pair is blacked out at `t`, the instant it heals (chains
    /// through overlapping windows: the heal of one window may land
    /// inside another).
    fn heal_time(&self, dest: ShardId, t: SimTime) -> Option<SimTime> {
        let windows = self.blackouts.get(&dest)?;
        let mut at = t;
        let mut blacked = false;
        loop {
            let next = windows
                .iter()
                .filter(|&&(from, until)| from <= at && at < until)
                .map(|&(_, until)| until)
                .max();
            match next {
                Some(until) => {
                    blacked = true;
                    at = until;
                }
                None => break,
            }
        }
        blacked.then_some(at)
    }

    fn take_batch(&mut self, dest: ShardId, at: SimTime) -> Batch {
        let pair = self.pairs.entry(dest).or_default();
        let transfers = std::mem::take(&mut pair.transfers);
        pair.deadline = None;
        if transfers.len() >= self.batch_cap {
            self.stats.cap_flushes += 1;
        } else {
            self.stats.timeout_flushes += 1;
        }
        self.stats.batches += 1;
        self.stats.txs_settled += transfers.len() as u64;
        Batch {
            source: self.source,
            dest,
            transfers,
            at,
        }
    }

    /// Submits one transfer toward `dest` at simulated time `now`.
    ///
    /// The first transfer of a batch arms the timeout flush
    /// ([`Submit::Arm`]); reaching `batch_cap` flushes synchronously
    /// ([`Submit::Flushed`]) unless the pair is blacked out, in which case
    /// the deadline moves to the heal instant (re-armed if it changed).
    pub fn submit(&mut self, now: SimTime, dest: ShardId, transfer: u64) -> Submit {
        let heal = self.heal_time(dest, now);
        let timeout = self.timeout;
        let cap = self.batch_cap;
        let pair = self.pairs.entry(dest).or_default();
        let first = pair.transfers.is_empty();
        pair.transfers.push(transfer);
        if pair.transfers.len() >= cap {
            match heal {
                // A full batch flushes in the submitting event itself.
                None => Submit::Flushed(self.take_batch(dest, now)),
                // Blacked out: hold the (over-)full batch until the heal.
                Some(h) => {
                    if pair.deadline == Some(h) {
                        Submit::Queued
                    } else {
                        pair.deadline = Some(h);
                        Submit::Arm(h)
                    }
                }
            }
        } else if first {
            let at = now.saturating_add(timeout);
            pair.deadline = Some(at);
            Submit::Arm(at)
        } else {
            Submit::Queued
        }
    }

    /// Force-flushes the pair toward `dest` right now, bypassing both the
    /// cap and the armed deadline — the migration drain path: an account
    /// moving off this shard must not leave transfers parked in an open
    /// batch keyed to its old routing. Returns `None` when nothing pends.
    /// Clearing the deadline makes any armed flush event for the pair
    /// stale, so a drain never double-settles; the flush is booked through
    /// the ordinary [`SettleStats`] counters (as a timeout-class flush
    /// when under cap).
    pub fn drain(&mut self, now: SimTime, dest: ShardId) -> Option<Batch> {
        if self.pending(dest) == 0 {
            return None;
        }
        Some(self.take_batch(dest, now))
    }

    /// Adjudicates a flush event for `dest` firing at `now`.
    ///
    /// Only the event matching the pair's recorded deadline flushes; a
    /// cap flush or a re-arm in the meantime makes older events
    /// [`FlushOutcome::Stale`]. A live deadline inside a blackout defers
    /// to the heal instant instead ([`FlushOutcome::Deferred`]) — the
    /// caller schedules the replacement event, and the batch settles
    /// exactly once when it finally fires in the clear.
    pub fn on_flush(&mut self, now: SimTime, dest: ShardId) -> FlushOutcome {
        let heal = self.heal_time(dest, now);
        let Some(pair) = self.pairs.get_mut(&dest) else {
            return FlushOutcome::Stale;
        };
        if pair.transfers.is_empty() || pair.deadline != Some(now) {
            return FlushOutcome::Stale;
        }
        match heal {
            Some(h) => {
                pair.deadline = Some(h);
                self.stats.deferred_flushes += 1;
                FlushOutcome::Deferred(h)
            }
            None => FlushOutcome::Flushed(self.take_batch(dest, now)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn dst(v: u32) -> ShardId {
        ShardId::new(v)
    }

    fn batched(cap: usize) -> SettlementBatcher {
        SettlementBatcher::new(ShardId::new(0), &SettleConfig::batched(cap))
    }

    #[test]
    fn first_transfer_arms_the_timeout() {
        let mut b = batched(3);
        assert_eq!(b.submit(ms(100), dst(1), 7), Submit::Arm(ms(600)));
        assert_eq!(b.submit(ms(150), dst(1), 8), Submit::Queued);
        assert_eq!(b.pending(dst(1)), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn cap_flushes_synchronously_in_submission_order() {
        let mut b = batched(3);
        b.submit(ms(0), dst(1), 1);
        b.submit(ms(1), dst(1), 2);
        let Submit::Flushed(batch) = b.submit(ms(2), dst(1), 3) else {
            panic!("cap must flush");
        };
        assert_eq!(batch.transfers, vec![1, 2, 3]);
        assert_eq!(batch.at, ms(2));
        assert_eq!(batch.source, ShardId::new(0));
        assert_eq!(batch.dest, dst(1));
        assert!(b.is_empty());
        let s = b.stats();
        assert_eq!((s.batches, s.cap_flushes, s.txs_settled), (1, 1, 3));
    }

    #[test]
    fn timeout_event_flushes_a_partial_batch() {
        let mut b = batched(100);
        assert_eq!(b.submit(ms(0), dst(2), 5), Submit::Arm(ms(500)));
        b.submit(ms(10), dst(2), 6);
        let FlushOutcome::Flushed(batch) = b.on_flush(ms(500), dst(2)) else {
            panic!("deadline event must flush");
        };
        assert_eq!(batch.transfers, vec![5, 6]);
        assert_eq!(b.stats().timeout_flushes, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn superseded_timeout_event_is_stale() {
        let mut b = batched(2);
        b.submit(ms(0), dst(1), 1); // arms ms(500)
        b.submit(ms(10), dst(1), 2); // cap flush at ms(10)
                                     // The armed timeout still fires later; it must be a no-op.
        assert_eq!(b.on_flush(ms(500), dst(1)), FlushOutcome::Stale);
        assert_eq!(b.stats().batches, 1);
        // And a flush for a never-seen destination is stale too.
        assert_eq!(b.on_flush(ms(500), dst(9)), FlushOutcome::Stale);
    }

    #[test]
    fn destinations_batch_independently() {
        let mut b = batched(2);
        assert_eq!(b.submit(ms(0), dst(1), 1), Submit::Arm(ms(500)));
        assert_eq!(b.submit(ms(0), dst(2), 2), Submit::Arm(ms(500)));
        let Submit::Flushed(batch) = b.submit(ms(5), dst(1), 3) else {
            panic!("dest 1 reached cap");
        };
        assert_eq!(batch.transfers, vec![1, 3]);
        assert_eq!(b.pending(dst(2)), 1);
    }

    #[test]
    fn cap_one_is_the_unbatched_ledger() {
        // Both a disabled config and an enabled cap-1 config flush every
        // submission immediately: one message per transfer, tx-for-tx.
        for config in [SettleConfig::disabled(), SettleConfig::batched(1)] {
            let mut b = SettlementBatcher::new(ShardId::new(3), &config);
            assert_eq!(b.batch_cap(), 1);
            for (i, t) in [ms(3), ms(8), ms(9)].iter().enumerate() {
                let Submit::Flushed(batch) = b.submit(*t, dst(1), i as u64) else {
                    panic!("cap 1 must flush per submission");
                };
                assert_eq!(batch.transfers, vec![i as u64]);
                assert_eq!(batch.at, *t);
            }
            assert!(b.is_empty());
            assert_eq!(b.stats().batches, 3);
        }
    }

    #[test]
    fn blackout_defers_a_timeout_flush_to_the_heal() {
        let mut b = batched(100);
        b.set_blackouts(dst(1), vec![(ms(400), ms(900))]);
        b.submit(ms(0), dst(1), 1); // arms ms(500), inside the blackout
        assert_eq!(b.on_flush(ms(500), dst(1)), FlushOutcome::Deferred(ms(900)));
        assert_eq!(b.stats().deferred_flushes, 1);
        // The old event's deadline moved: firing it again is stale.
        assert_eq!(b.on_flush(ms(500), dst(1)), FlushOutcome::Stale);
        // The re-armed event settles exactly once at the heal.
        let FlushOutcome::Flushed(batch) = b.on_flush(ms(900), dst(1)) else {
            panic!("heal-time event must flush");
        };
        assert_eq!(batch.transfers, vec![1]);
        assert_eq!(batch.at, ms(900));
        assert!(b.is_empty());
    }

    #[test]
    fn blackout_holds_a_full_batch_until_the_heal() {
        let mut b = batched(2);
        b.set_blackouts(dst(1), vec![(ms(0), ms(1000))]);
        // The first transfer arms its ordinary timeout; deferral is
        // adjudicated when a flush would actually happen.
        assert_eq!(b.submit(ms(10), dst(1), 1), Submit::Arm(ms(510)));
        // Cap reached inside the blackout: no flush — the deadline moves
        // to the heal instead, superseding the timeout event.
        assert_eq!(b.submit(ms(20), dst(1), 2), Submit::Arm(ms(1000)));
        // The batch may overfill while blacked out.
        assert_eq!(b.submit(ms(30), dst(1), 3), Submit::Queued);
        assert_eq!(b.pending(dst(1)), 3);
        // The superseded timeout event fires mid-blackout: stale.
        assert_eq!(b.on_flush(ms(510), dst(1)), FlushOutcome::Stale);
        let FlushOutcome::Flushed(batch) = b.on_flush(ms(1000), dst(1)) else {
            panic!("heal event must flush");
        };
        assert_eq!(batch.transfers, vec![1, 2, 3]);
        assert_eq!(b.stats().cap_flushes, 1);
    }

    #[test]
    fn overlapping_blackouts_chain_to_the_final_heal() {
        let mut b = batched(100);
        b.set_blackouts(dst(1), vec![(ms(100), ms(600)), (ms(550), ms(800))]);
        b.submit(ms(0), dst(1), 1); // arms ms(500)
                                    // ms(500) is inside the first window, whose heal ms(600) is inside
                                    // the second: the deferral chains straight to ms(800).
        assert_eq!(b.on_flush(ms(500), dst(1)), FlushOutcome::Deferred(ms(800)));
        let FlushOutcome::Flushed(batch) = b.on_flush(ms(800), dst(1)) else {
            panic!("final heal must flush");
        };
        assert_eq!(batch.at, ms(800));
    }

    #[test]
    fn clearing_blackouts_restores_immediate_flushing() {
        let mut b = batched(1);
        b.set_blackouts(dst(1), vec![(ms(0), ms(100))]);
        assert_eq!(b.submit(ms(10), dst(1), 1), Submit::Arm(ms(100)));
        b.set_blackouts(dst(1), Vec::new());
        let FlushOutcome::Flushed(_) = b.on_flush(ms(100), dst(1)) else {
            panic!("cleared blackout must flush");
        };
        assert!(matches!(b.submit(ms(200), dst(1), 2), Submit::Flushed(_)));
    }

    #[test]
    fn drain_flushes_the_open_pair_and_stales_its_deadline() {
        let mut b = batched(100);
        assert_eq!(b.drain(ms(5), dst(1)), None, "nothing pending: no batch");
        b.submit(ms(0), dst(1), 1); // arms ms(500)
        b.submit(ms(10), dst(1), 2);
        let batch = b.drain(ms(50), dst(1)).expect("open pair must drain");
        assert_eq!(batch.transfers, vec![1, 2]);
        assert_eq!(batch.at, ms(50));
        assert!(b.is_empty());
        // The armed timeout event now finds a cleared deadline: stale.
        assert_eq!(b.on_flush(ms(500), dst(1)), FlushOutcome::Stale);
        let s = b.stats();
        assert_eq!((s.batches, s.timeout_flushes, s.txs_settled), (1, 1, 2));
    }

    #[test]
    fn resubmission_after_flush_starts_a_fresh_batch() {
        let mut b = batched(2);
        b.submit(ms(0), dst(1), 1);
        b.submit(ms(1), dst(1), 2); // cap flush
        assert_eq!(b.submit(ms(50), dst(1), 3), Submit::Arm(ms(550)));
        let FlushOutcome::Flushed(batch) = b.on_flush(ms(550), dst(1)) else {
            panic!("fresh batch must flush on its own deadline");
        };
        assert_eq!(batch.transfers, vec![3]);
        let s = b.stats();
        assert_eq!((s.batches, s.cap_flushes, s.timeout_flushes), (2, 1, 1));
        assert!((s.avg_fill() - 1.5).abs() < 1e-12);
    }
}
