//! Batched cross-shard settlement ("async crosslinks").
//!
//! The paper's ChainSpace comparison charges every cross-shard transaction
//! its own 2PC validation round (Sec. VII: "at least 2 rounds of
//! cross-shard communication"), so cross-shard message cost grows linearly
//! with traffic — the Fig. 4(b) line. This crate breaks that linearity the
//! way Vision-Node-style crosslinks do: transfers destined for the same
//! shard pair accumulate in a batch and ship as **one** crosslink message
//! when the batch fills (`batch_cap`) or a simulated-time timeout expires.
//!
//! The crate is deliberately a *pure batching engine*, below the runtime:
//!
//! * [`SettleConfig`] — the `{ enabled, batch_cap, timeout }` knob set,
//!   off by default so every existing run is bit-identical;
//! * [`SettlementBatcher`] — per-source batching state keyed by
//!   destination shard. It never schedules anything itself; it *asks* the
//!   caller to arm a flush at an absolute simulated time ([`Submit::Arm`])
//!   and adjudicates fired flush events ([`SettlementBatcher::on_flush`]),
//!   which keeps it wall-clock-free by construction (ND001) and lets any
//!   event loop drive it;
//! * [`SettleStats`] — flush accounting (batches, fill, cap vs. timeout
//!   vs. deferred flushes), mergeable across shards for the run outcome.
//!
//! Fault integration: a partition that blacks out a shard pair mid-batch
//! must not lose or duplicate transfers. The batcher takes the pair's
//! blackout windows up front and **defers** any flush that would land
//! inside one to the heal instant — never hastens it — re-arming through
//! the caller's event queue. Exactly-once then follows from two local
//! invariants: a transfer enters exactly one pair buffer exactly once, and
//! a buffer is drained only by the single flush event whose timestamp
//! matches the recorded deadline (every superseded event is recognized as
//! stale and ignored).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Settlement runs inside driver event paths: typed flow, no panics (PH001).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batcher;
pub mod config;
pub mod stats;

pub use batcher::{Batch, FlushOutcome, SettlementBatcher, Submit};
pub use config::SettleConfig;
pub use stats::SettleStats;
