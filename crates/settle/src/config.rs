//! The settlement knob set, threaded through `RuntimeConfig` and
//! `SystemBuilder` exactly like the selection warm cache: off by default,
//! bit-invisible until a run opts in.

use cshard_primitives::{Error, SimTime};

/// Batched-settlement configuration.
///
/// The defaults mirror the Vision-Node crosslink calibration (~100
/// transfers per crosslink, 500 ms flush timeout) but stay **disabled**:
/// a default config books one message per transfer, which is the per-tx
/// 2PC ledger every golden experiment pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SettleConfig {
    /// Whether flushes are batched at all. `false` settles each transfer
    /// individually the instant it confirms — the unbatched ledger, and
    /// the behaviour `batch_cap = 1` must reproduce tx-for-tx.
    pub enabled: bool,
    /// Transfers per destination shard that force a flush. A full batch
    /// flushes synchronously inside the submitting event.
    pub batch_cap: usize,
    /// Simulated-time bound on how long the first transfer of a batch may
    /// wait before a flush is forced (armed as a runtime event by the
    /// caller — never a wall clock).
    pub timeout: SimTime,
}

impl SettleConfig {
    /// The off switch: per-transfer settlement, no batching state at all.
    pub const fn disabled() -> Self {
        SettleConfig {
            enabled: false,
            batch_cap: 100,
            timeout: SimTime::from_millis(500),
        }
    }

    /// Batched settlement at `batch_cap` with the default 500 ms timeout.
    pub const fn batched(batch_cap: usize) -> Self {
        SettleConfig {
            enabled: true,
            batch_cap,
            timeout: SimTime::from_millis(500),
        }
    }

    /// Validates the knob set: an enabled config needs a positive cap and
    /// a positive timeout (a zero timeout would flush every batch in the
    /// submitting event and silently degenerate to `batch_cap = 1`).
    pub fn validate(&self) -> Result<(), Error> {
        if !self.enabled {
            return Ok(());
        }
        if self.batch_cap == 0 {
            return Err(Error::Config {
                field: "settle.batch_cap",
                reason: "must be at least 1 when settlement is enabled".into(),
            });
        }
        if self.timeout == SimTime::ZERO {
            return Err(Error::Config {
                field: "settle.timeout",
                reason: "must be positive when settlement is enabled".into(),
            });
        }
        Ok(())
    }
}

impl Default for SettleConfig {
    fn default() -> Self {
        SettleConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let c = SettleConfig::default();
        assert!(!c.enabled);
        assert_eq!(c, SettleConfig::disabled());
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn batched_uses_vision_node_timeout() {
        let c = SettleConfig::batched(100);
        assert!(c.enabled);
        assert_eq!(c.batch_cap, 100);
        assert_eq!(c.timeout, SimTime::from_millis(500));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn enabled_zero_cap_rejected() {
        let c = SettleConfig {
            enabled: true,
            batch_cap: 0,
            timeout: SimTime::from_millis(500),
        };
        assert!(matches!(
            c.validate(),
            Err(Error::Config {
                field: "settle.batch_cap",
                ..
            })
        ));
    }

    #[test]
    fn enabled_zero_timeout_rejected() {
        let c = SettleConfig {
            enabled: true,
            batch_cap: 10,
            timeout: SimTime::ZERO,
        };
        assert!(matches!(
            c.validate(),
            Err(Error::Config {
                field: "settle.timeout",
                ..
            })
        ));
    }

    #[test]
    fn disabled_is_valid_regardless_of_knobs() {
        let c = SettleConfig {
            enabled: false,
            batch_cap: 0,
            timeout: SimTime::ZERO,
        };
        assert_eq!(c.validate(), Ok(()));
    }
}
