//! Flush accounting, surfaced per driver and merged into the run outcome.

/// What a settlement batcher did over a run. Sim-clock-free counters
/// (ND001): pure event-path arithmetic, mergeable across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SettleStats {
    /// Crosslink batches flushed (each books one communication message).
    pub batches: u64,
    /// Transfers settled across all batches.
    pub txs_settled: u64,
    /// Flushes forced by a full batch (`batch_cap` reached).
    pub cap_flushes: u64,
    /// Flushes forced by the simulated-time timeout.
    pub timeout_flushes: u64,
    /// Flushes that landed inside a pair blackout and were re-armed at
    /// the heal instant (each deferral counts once; the eventual flush
    /// still counts under cap or timeout).
    pub deferred_flushes: u64,
}

impl SettleStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        SettleStats::default()
    }

    /// Average transfers per flushed batch (`0.0` before the first flush)
    /// — the fill factor the settle grid reports.
    pub fn avg_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.txs_settled as f64 / self.batches as f64
        }
    }

    /// Folds another shard's accounting into this one (the run outcome
    /// aggregates every driver's stats this way).
    pub fn merge(&mut self, other: &SettleStats) {
        self.batches += other.batches;
        self.txs_settled += other.txs_settled;
        self.cap_flushes += other.cap_flushes;
        self.timeout_flushes += other.timeout_flushes;
        self.deferred_flushes += other.deferred_flushes;
    }

    /// Whether any settlement happened at all.
    pub fn is_empty(&self) -> bool {
        *self == SettleStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_fill_handles_zero_batches() {
        assert_eq!(SettleStats::new().avg_fill(), 0.0);
        let s = SettleStats {
            batches: 4,
            txs_settled: 10,
            ..SettleStats::default()
        };
        assert!((s.avg_fill() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = SettleStats {
            batches: 1,
            txs_settled: 3,
            cap_flushes: 1,
            timeout_flushes: 0,
            deferred_flushes: 2,
        };
        let b = SettleStats {
            batches: 2,
            txs_settled: 5,
            cap_flushes: 0,
            timeout_flushes: 2,
            deferred_flushes: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SettleStats {
                batches: 3,
                txs_settled: 8,
                cap_flushes: 1,
                timeout_flushes: 2,
                deferred_flushes: 3,
            }
        );
    }

    #[test]
    fn emptiness() {
        assert!(SettleStats::new().is_empty());
        let s = SettleStats {
            batches: 1,
            ..SettleStats::default()
        };
        assert!(!s.is_empty());
    }
}
