//! # ContractShard
//!
//! A from-scratch Rust implementation of **"On Sharding Open Blockchains
//! with Smart Contracts"** (Tao et al., ICDE 2020): contract-centric
//! sharding for account-based blockchains, with the paper's inter-shard
//! merging game, intra-shard transaction-selection game, and parameter
//! unification scheme — plus every substrate they need (ledger, PoW,
//! simulated network, discrete-event runtime) and the full evaluation
//! harness.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use contractshard::prelude::*;
//!
//! // 200 transactions spread over 8 contracts + the MaxShard — the
//! // paper's nine-shard testbed workload.
//! let workload = Workload::uniform_contracts(
//!     200, 8, FeeDistribution::Uniform { lo: 1, hi: 100 }, 42,
//! );
//!
//! // Configure the contract-centric sharding system with the builder.
//! // `threads(0)` simulates the shards on one worker per core; results
//! // are bit-identical to a sequential run (per-shard PRF seeding).
//! let system = ShardingSystem::builder()
//!     .shards(9)
//!     .block_capacity(10)
//!     .seed(42)
//!     .threads(0)
//!     .build()
//!     .expect("valid configuration");
//! let report = system.run(&workload).expect("run completes");
//!
//! // …and compare with the single-chain Ethereum baseline.
//! let baseline = RuntimeConfig { seed: 42, ..RuntimeConfig::default() };
//! let ethereum = simulate_ethereum(workload.fees(), 1, &baseline).expect("valid config");
//! let improvement = throughput_improvement(&ethereum, &report.run);
//! assert!(improvement > 2.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`primitives`] | hashes, addresses, amounts, ids, simulated time |
//! | [`crypto`] | SHA-256, PRF, simulated VRF, randomness beacon |
//! | [`ledger`] | accounts, contracts, transactions, blocks, chains, mempool, call graph |
//! | [`consensus`] | real PoW + the Poisson mining model |
//! | [`network`] | latency model + cross-shard communication accounting |
//! | [`sim`] | deterministic discrete-event engine + the shard-lifecycle work scheduler |
//! | [`runtime`] | typed events, the `ProtocolDriver` trait, propagation models, the `Runtime::builder()` run harness |
//! | [`games`] | merging game (Alg. 1+3), selection game (Alg. 2), parameter unification |
//! | [`security`] | Fig. 1(d) shard safety and the Eq. (3)–(6) corruption bounds |
//! | [`workload`] | the Sec. VI injection generators |
//! | [`baselines`] | randomized merging, ChainSpace model, optimal oracles |
//! | [`place`] | cross-epoch placement engine: hot-account traffic tracking, imbalance metric, migration proposals |
//! | [`core`] | shard formation, miner assignment, the staged `EpochPipeline`, the end-to-end system |
//! | [`faults`] | deterministic fault injection, VRF leader failover, empirical corruption checks |

#![warn(missing_docs)]

pub use cshard_baselines as baselines;
pub use cshard_consensus as consensus;
pub use cshard_core as core;
pub use cshard_crypto as crypto;
pub use cshard_faults as faults;
pub use cshard_games as games;
pub use cshard_ledger as ledger;
pub use cshard_network as network;
pub use cshard_place as place;
pub use cshard_primitives as primitives;
pub use cshard_runtime as runtime;
pub use cshard_security as security;
pub use cshard_sim as sim;
pub use cshard_workload as workload;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use cshard_baselines::{random_merge, ChainspaceDriver, ChainspacePlacement};
    pub use cshard_core::system::{MinerAllocation, SystemBuilder, SystemConfig};
    pub use cshard_core::{
        simulate, simulate_ethereum, throughput_improvement, EpochInput, EpochPipeline,
        MinerAssignment, PipelineConfig, RunReport, RuntimeConfig, SelectionStrategy, ShardPlan,
        ShardSpec, ShardingSystem, StageKind, StageObserver, SystemReport,
    };
    pub use cshard_core::{EpochManager, EpochOutcome, LongRun, LongRunConfig, PipelineMetrics};
    pub use cshard_crypto::{sha256, RandomnessBeacon, Vrf};
    pub use cshard_faults::{
        measure_corruption, run_leader_faults, run_with_faults, FaultPlan, FaultyDriver,
        LeaderFaultPlan,
    };
    pub use cshard_games::{
        best_reply_equilibrium, iterative_merge, GameInputs, MergingConfig, SelectionConfig,
        UnifiedParameters,
    };
    pub use cshard_ledger::{
        Block, CallGraph, Chain, Condition, Mempool, SmartContract, State, Transaction,
    };
    pub use cshard_place::{Migration, PlacementConfig, PlacementEngine};
    pub use cshard_primitives::Error;
    pub use cshard_primitives::{Address, Amount, ContractId, Hash32, MinerId, ShardId, SimTime};
    pub use cshard_runtime::{
        ContractShardDriver, Ctx, EthereumDriver, Event, MigratingShardDriver, MigrationStats,
        MigrationTicket, PropagationModel, ProtocolDriver, RunBuilder, RunObserver, RunOutcome,
        RunPhase, RunSchedStats, Runtime,
    };
    pub use cshard_security::{shard_safety, CorruptionThreshold};
    pub use cshard_sim::{DrainStats, SchedulerConfig, WorkScheduler};
    pub use cshard_workload::{FeeDistribution, Workload};
}
