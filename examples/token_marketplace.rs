//! A marketplace scenario: a few hot token contracts and a long tail of
//! niche ones — the workload shape the paper's introduction motivates
//! (mainnet's most popular contract holds 10.35 M transactions while
//! thousands barely see any).
//!
//! The long tail produces many *small* shards that would waste mining power
//! on empty blocks; this example shows the inter-shard merging game fusing
//! them, and what it costs.
//!
//! Run with: `cargo run --release --example token_marketplace`

use contractshard::prelude::*;

fn main() {
    // 600 transactions over 24 contracts with Zipf(1.2) popularity: the
    // top contract takes ~25%, the tail contracts a handful each.
    let workload =
        Workload::heavy_tail(600, 24, 1.2, FeeDistribution::Exponential { mean: 40.0 }, 7);
    let plan = ShardPlan::build(&workload.transactions, &CallGraph::new());
    let sizes = plan.shard_sizes();
    let small = plan.small_shards(10).len();
    println!(
        "marketplace formation: {} active shards, {small} below 10 txs",
        sizes.len()
    );
    let mut sorted: Vec<u64> = sizes.iter().map(|&(_, s)| s).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    println!("  shard sizes (desc): {sorted:?}");

    // Without merging: the tail shards idle and pack empty blocks.
    let before = ShardingSystem::builder()
        .seed(7)
        .empty_block_window(SimTime::from_secs(600))
        .build()
        .expect("valid configuration")
        .run(&workload)
        .expect("valid config");

    // With the merging game (Algorithm 1 + 3) under unified parameters.
    let after = ShardingSystem::builder()
        .seed(7)
        .empty_block_window(SimTime::from_secs(600))
        .merging(10)
        .epoch(1)
        .build()
        .expect("valid configuration")
        .run(&workload)
        .expect("valid config");

    let runtime = RuntimeConfig {
        seed: 7,
        empty_block_window: Some(SimTime::from_secs(600)),
        ..RuntimeConfig::default()
    };
    let ethereum =
        simulate_ethereum(workload.fees(), 1, &runtime).expect("valid runtime configuration");
    let merge = after.merge.as_ref().expect("merging ran");

    println!("\nmerging game outcome:");
    println!(
        "  {} small shards -> {} merged shards ({} left unmerged)",
        merge.small_shards, merge.new_shards, merge.leftover
    );
    println!(
        "  communication spent: {} rounds total (2 per small shard — submit \
         sizes, receive broadcast)",
        after.comm.total()
    );

    println!("\nwaste and throughput:");
    println!(
        "  empty blocks: {} before merging, {} after ({}% reduction)",
        before.run.total_empty_blocks(),
        after.run.total_empty_blocks(),
        (100.0
            * (1.0
                - after.run.total_empty_blocks() as f64
                    / before.run.total_empty_blocks().max(1) as f64))
            .round()
    );
    println!(
        "  throughput improvement vs Ethereum: {:.2}x before, {:.2}x after",
        throughput_improvement(&ethereum, &before.run),
        throughput_improvement(&ethereum, &after.run),
    );
    println!(
        "  (the paper's trade-off: ~90% fewer empty blocks for ~14% less \
         throughput improvement)"
    );
}
