//! Quickstart: contract-centric sharding vs. vanilla Ethereum in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use contractshard::prelude::*;

fn main() {
    // The paper's testbed workload: 200 transactions spread uniformly over
    // 8 smart contracts plus the MaxShard (Sec. VI-B1).
    let workload =
        Workload::uniform_contracts(200, 8, FeeDistribution::Uniform { lo: 1, hi: 100 }, 42);

    // How the transactions are classified (Sec. III-A): single-contract
    // senders are isolable; everything else goes to the MaxShard.
    let plan = ShardPlan::build(&workload.transactions, &CallGraph::new());
    println!("shard formation:");
    for (shard, size) in plan.shard_sizes() {
        println!("  {shard}: {size} transactions");
    }

    // Run the sharded system: one miner per shard, one block per minute,
    // 10 transactions per block — the paper's testbed calibration. The
    // builder validates the combination; threads(0) simulates shards on
    // one worker per core with bit-identical results to a sequential run.
    let system = ShardingSystem::builder()
        .shards(9)
        .block_capacity(10)
        .threads(0)
        .build()
        .expect("valid configuration");
    let sharded = system.run(&workload).expect("valid config");

    // The Ethereum baseline: the same transactions on one serialized chain.
    let ethereum = simulate_ethereum(workload.fees(), 1, &RuntimeConfig::default())
        .expect("valid runtime configuration");

    println!("\nresults:");
    println!(
        "  Ethereum : all confirmed after {} ({} blocks)",
        ethereum.completion,
        ethereum.total_blocks()
    );
    println!(
        "  Sharded  : all confirmed after {} ({} blocks across {} shards)",
        sharded.run.completion,
        sharded.run.total_blocks(),
        sharded.run.shards.len()
    );
    println!(
        "  Throughput improvement: {:.2}x (paper reports 7.2x at 9 shards \
         on its AWS testbed)",
        throughput_improvement(&ethereum, &sharded.run)
    );
    println!(
        "  Cross-shard communication during validation: {} rounds (always 0 \
         by construction)",
        sharded.comm.total()
    );
}
