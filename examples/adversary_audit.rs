//! Security audit walkthrough: every verification the protocol performs,
//! exercised by an active adversary.
//!
//! 1. Shard-safety mathematics (Fig. 1(d)) and the Sec. IV-D corruption
//!    bounds for the two game mechanisms.
//! 2. Parameter unification in action: three replicas replay the games
//!    locally and agree bit-for-bit; a cheating claim is caught.
//!
//! Run with: `cargo run --release --example adversary_audit`

use contractshard::prelude::*;
use contractshard::security::{inter_shard_corruption_for_shard, selection_corruption};

fn main() {
    // --- 1. How big must a shard be? -----------------------------------
    println!("shard safety (corruption needs an in-shard majority):");
    for f in [0.25, 0.33] {
        print!("  {:.0}% adversary:", f * 100.0);
        for n in [10u64, 30, 60, 100] {
            print!(
                "  n={n}: {:.5}",
                shard_safety(n, f, CorruptionThreshold::Majority)
            );
        }
        println!();
    }
    println!(
        "  -> a 30-miner shard against a 33% adversary is corrupted with \
         probability {:.4} ('almost 0', Fig. 1(d))",
        1.0 - shard_safety(30, 0.33, CorruptionThreshold::Majority)
    );

    println!("\ngame-mechanism corruption (l -> infinity, Sec. IV-D):");
    println!(
        "  inter-shard merging, Eq. (3), f=25%: {:.2e}  (paper: 8e-6)",
        inter_shard_corruption_for_shard(0.25, 62, None)
    );
    println!(
        "  intra-shard selection, Eq. (6), f=25%: {:.2e}  (paper: 7e-7)",
        selection_corruption(0.25, 200, None, |_| 78)
    );

    // --- 2. Parameter unification catches rule-breakers ----------------
    // A leader broadcasts unified inputs for a selection epoch; replicas
    // replay Algorithm 2 locally.
    let leader = Vrf::from_seed(b"epoch-leader");
    let miners: Vec<MinerId> = (0..6).map(MinerId::new).collect();
    let fees: Vec<u64> = (1..=60).map(|i| (i * 7) % 97 + 1).collect();
    let params = UnifiedParameters::from_leader(
        &leader,
        9,
        miners,
        GameInputs::Select {
            shard: ShardId::new(0),
            fees,
            config: SelectionConfig {
                capacity: 5,
                max_rounds: 1000,
            },
        },
    );

    // Three independent replicas.
    let outcomes: Vec<_> = (0..3)
        .map(|_| {
            params
                .clone()
                .selection_outcome()
                .expect("selection inputs")
        })
        .collect();
    assert!(outcomes
        .windows(2)
        .all(|w| w[0].assignments == w[1].assignments));
    println!(
        "\nparameter unification: 3 replicas replayed Algorithm 2 and \
         agreed on {} distinct transaction sets (zero in-game messages)",
        outcomes[0].distinct_set_count()
    );

    // An honest block (a subset of the packer's equilibrium set) passes…
    let honest_set = &outcomes[0].assignments[2];
    assert!(params.verify_selection_block(2, honest_set).is_ok());
    println!("  honest block by miner-2 with its equilibrium set: ACCEPTED");

    // …while a malicious miner packing someone else's transaction is caught.
    let foreign = outcomes[0].assignments[0][0];
    match params.verify_selection_block(2, &[foreign]) {
        Err(e) => println!("  malicious block by miner-2 stealing tx {foreign}: REJECTED ({e})"),
        Ok(()) => unreachable!("the violation must be detected"),
    }

    // The merge outcome is verifiable the same way.
    let merge_params = UnifiedParameters::from_leader(
        &leader,
        10,
        (0..5).map(MinerId::new).collect(),
        GameInputs::Merge {
            shard_sizes: (0..5u32).map(|i| (ShardId::new(i), 4 + i as u64)).collect(),
            config: MergingConfig {
                lower_bound: 12,
                ..MergingConfig::default()
            },
        },
    );
    let outcome = merge_params.merge_outcome().expect("merge inputs");
    assert!(merge_params.verify_merge_claim(&outcome.new_shards).is_ok());
    let mut lie = outcome.new_shards.clone();
    lie.push(vec![0]);
    assert!(merge_params.verify_merge_claim(&lie).is_err());
    println!(
        "  merge partition: honest claim ACCEPTED, fabricated extra shard \
         REJECTED"
    );
    println!(
        "\nconclusion: blocks contradicting the locally replayed game \
         outcome are rejected, so a sub-33% adversary cannot steer merging \
         or selection (Sec. IV-C/IV-D)."
    );
}
