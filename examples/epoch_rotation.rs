//! Multi-epoch operation: leader rotation, miner reshuffling, and history
//! accumulation across epochs — the periodic reconfiguration that defeats
//! slow adversarial concentration (the Sybil-attack argument of Sec. VII).
//!
//! Run with: `cargo run --release --example epoch_rotation`

use contractshard::prelude::*;

fn main() {
    let mut mgr = EpochManager::with_miner_count(60);
    let fees = FeeDistribution::Uniform { lo: 1, hi: 100 };

    println!("running 5 epochs over a 60-miner enrolment…\n");
    let mut prev_assignment: Option<std::collections::BTreeMap<MinerId, ShardId>> = None;
    for epoch in 0..5u64 {
        // Each epoch brings a fresh transaction batch; the contract mix
        // drifts (a contract is added every other epoch).
        let contracts = 4 + (epoch / 2) as usize;
        let batch = Workload::uniform_contracts(150, contracts, fees, 100 + epoch);
        let out = mgr.run_epoch(&batch.transactions);

        // Miner movement vs. the previous epoch.
        let moved = prev_assignment
            .as_ref()
            .map(|prev| {
                out.shard_of
                    .iter()
                    .filter(|(id, s)| prev.get(id).is_some_and(|p| p != *s))
                    .count()
            })
            .unwrap_or(0);
        prev_assignment = Some(out.shard_of.clone());

        println!(
            "epoch {}: leader {}, {} active shards, {} miners reshuffled",
            out.epoch,
            out.leader,
            out.plan.active_shard_count(),
            moved,
        );
        // Every claim is verifiable by anyone holding the broadcast.
        for (id, shard) in out.shard_of.iter().take(3) {
            let pk = mgr.public_key(*id).unwrap();
            assert!(out.assignment.verify_claim(pk, *shard));
            println!("    {id} -> {shard} (claim verified)");
        }
    }

    println!(
        "\ncall-graph history now tracks {} senders across epochs; a sender \
         that diversifies migrates to the MaxShard automatically:",
        mgr.history().sender_count()
    );

    // Demonstrate cross-epoch reclassification.
    let loyal = Address::user(5_000_000);
    let call0 = Transaction::call(loyal, 0, ContractId::new(0), Amount(10), Amount(1));
    let out = mgr.run_epoch(std::slice::from_ref(&call0));
    println!(
        "  epoch {}: first-time sender calling contract-0 -> {} MaxShard txs (isolable)",
        out.epoch,
        out.plan.maxshard.len()
    );
    let call1 = Transaction::call(loyal, 1, ContractId::new(1), Amount(10), Amount(1));
    let out = mgr.run_epoch(std::slice::from_ref(&call1));
    println!(
        "  epoch {}: same sender calling contract-1 -> {} MaxShard txs (history forces MaxShard)",
        out.epoch,
        out.plan.maxshard.len()
    );
}
