//! A miniature real-PoW network: full nodes over the actual substrates —
//! real SHA-256 proof-of-work, real chains with state validation, the
//! Sec. III-C routing and verification workflow. No statistical model here;
//! every block is actually mined.
//!
//! Run with: `cargo run --release --example pow_network`

use contractshard::core::node::{Node, NodeError};
use contractshard::crypto::VrfPublicKey;
use contractshard::prelude::*;
use std::collections::BTreeMap;

const POW_BITS: u32 = 12; // a few thousand hashes per block

fn main() {
    // --- Genesis: fund users, register two contracts --------------------
    let mut genesis = State::new();
    for u in 0..32 {
        genesis.fund_user(Address::user(u), Amount::from_coins(100));
    }
    for c in 0..2u32 {
        genesis.register_contract(SmartContract::unconditional(
            ContractId::new(c),
            Address::user(900 + c as u64),
        ));
        genesis.fund_user(Address::user(900 + c as u64), Amount::ZERO);
    }

    // --- Miner separation (Sec. III-B) ----------------------------------
    // Fractions: shard 0 and 1 get 33/33, the MaxShard 34.
    let fractions = vec![
        (ShardId::new(0), 33u32),
        (ShardId::new(1), 33),
        (ShardId::MAX_SHARD, 34),
    ];
    let assignment = MinerAssignment::new(sha256(b"epoch-randomness"), &fractions);

    // Enroll one miner per shard: draw keys until the public randomness
    // assigns one to each shard (exactly how a miner learns its shard).
    let mut roster: BTreeMap<MinerId, VrfPublicKey> = BTreeMap::new();
    let mut vrfs = Vec::new();
    let targets = [ShardId::new(0), ShardId::new(1), ShardId::MAX_SHARD];
    let mut key_seed = 0u64;
    for (i, target) in targets.iter().enumerate() {
        loop {
            let vrf = Vrf::from_seed(key_seed.to_be_bytes());
            key_seed += 1;
            if assignment.shard_of(vrf.public_key()) == *target {
                roster.insert(MinerId::new(i as u32), vrf.public_key());
                vrfs.push((*target, vrf));
                break;
            }
        }
    }
    let mut nodes: Vec<Node> = vrfs
        .into_iter()
        .enumerate()
        .map(|(i, (shard, vrf))| {
            println!("miner-{i} assigned to {shard} (verifiable from its public key)");
            Node::new(
                MinerId::new(i as u32),
                vrf,
                shard,
                genesis.clone(),
                assignment.clone(),
                roster.clone(),
                POW_BITS,
                10,
            )
        })
        .collect();

    // --- Broadcast transactions; nodes route by call graph --------------
    let txs = vec![
        Transaction::call(
            Address::user(1),
            0,
            ContractId::new(0),
            Amount::from_coins(2),
            Amount::from_raw(30),
        ),
        Transaction::call(
            Address::user(2),
            0,
            ContractId::new(0),
            Amount::from_coins(1),
            Amount::from_raw(50),
        ),
        Transaction::call(
            Address::user(3),
            0,
            ContractId::new(1),
            Amount::from_coins(3),
            Amount::from_raw(20),
        ),
        Transaction::direct(
            Address::user(4),
            0,
            Address::user(5),
            Amount::from_coins(1),
            Amount::from_raw(40),
        ),
    ];
    for tx in &txs {
        let takers: Vec<String> = nodes
            .iter_mut()
            .filter_map(|n| {
                n.submit_transaction(tx.clone())
                    .ok()
                    .map(|_| n.shard().to_string())
            })
            .collect();
        println!("tx from {:?} pooled by: {takers:?}", tx.sender);
    }

    // --- Mine in parallel shards (real nonce search) ---------------------
    println!("\nmining one block per shard at {POW_BITS}-bit difficulty…");
    let blocks: Vec<Block> = nodes
        .iter_mut()
        .map(|n| {
            n.mine_block(SimTime::from_secs(60))
                .expect("example difficulty is minable")
        })
        .collect();
    for (n, b) in nodes.iter().zip(&blocks) {
        println!(
            "  {}: block {} with {} txs, pow nonce {}",
            n.shard(),
            b.hash(),
            b.transactions.len(),
            b.header.pow_nonce
        );
    }

    // Deliver every block to every node; only same-shard nodes record it.
    let mut recorded = 0;
    for block in &blocks {
        for node in nodes.iter_mut() {
            match node.receive_block(block.clone()) {
                Ok(()) => recorded += 1,
                Err(NodeError::NotOurShard(_)) => {}
                Err(NodeError::Ledger(e)) => panic!("valid block rejected: {e}"),
                Err(e) => panic!("unexpected rejection: {e:?}"),
            }
        }
    }
    println!("\n{recorded} (block, node) pairs recorded — one per shard, as designed");

    // --- An adversary forges its shard id --------------------------------
    let mut forged = blocks[0].clone();
    forged.header.shard = ShardId::new(1);
    contractshard::consensus::pow::mine(&mut forged).expect("regrind");
    match nodes[1].receive_block(forged) {
        Err(NodeError::ShardClaimMismatch { packer, claimed }) => println!(
            "forged block by {packer} claiming {claimed}: REJECTED \
             (assignment randomness proves the lie)"
        ),
        other => panic!("forgery not caught: {other:?}"),
    }

    // --- Final ledger state ----------------------------------------------
    let shard0_state = nodes[0].chain().state();
    println!(
        "\nshard-0 ledger after one block: contract-0 sink holds {}, miner \
         coinbase holds {}",
        shard0_state.balance_of(Address::user(900)),
        shard0_state.balance_of(Address::miner(0)),
    );
}
