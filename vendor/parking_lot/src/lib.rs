//! An offline drop-in for the `parking_lot` lock API over `std::sync`.
//!
//! `parking_lot` locks do not poison; this shim preserves that contract by
//! taking the inner value through poisoning (`into_inner` on the error),
//! so a panicked holder never cascades lock failures through the
//! simulation's statistics collectors.

#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning");
    }
}
