//! An offline drop-in for the subset of `criterion` this workspace's
//! benches use. It keeps the `criterion_group!`/`criterion_main!` harness
//! shape and the `BenchmarkGroup` builder API, but replaces criterion's
//! statistical machinery with a simple timed loop: each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints the median
//! per-iteration time. Good enough to compare before/after on one machine;
//! not a substitute for criterion's outlier analysis.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id labelled by the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: usize,
    last: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a warm-up pass, then `samples` timed passes.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine()); // warm-up, also defeats DCE
        self.last.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.last.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs built by `setup` outside the timed span.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        std::hint::black_box(routine(setup())); // warm-up, also defeats DCE
        self.last.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.last.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.last.is_empty() {
            return Duration::ZERO;
        }
        self.last.sort_unstable();
        self.last[self.last.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        let med = b.median();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / med.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / med.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("bench {}/{}: median {:?}{}", self.name, id, med, rate);
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored here, so
    /// `cargo bench -- <filter>` does not error out).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Convenience single-benchmark entry (criterion parity).
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(&name)
            .sample_size(10)
            .bench_function("run", f);
        self
    }

    /// Runs the registered group functions (invoked by `criterion_main!`).
    pub fn final_summary(&mut self) {}
}

/// Defines a benchmark group function invoking each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching criterion's optional `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran >= 4, "warm-up + samples ran the closure");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("merge", 100).to_string(), "merge/100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
