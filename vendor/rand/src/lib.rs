//! A dependency-free, offline drop-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the random-number traits it relies on: [`RngCore`],
//! [`SeedableRng`] and the extension trait [`Rng`] with `gen`, `gen_range`
//! and `gen_bool`. Integer ranges sample via widening-multiply reduction
//! (Lemire); `f64` uses the standard 53-bit mantissa construction. The
//! statistical quality target is simulation work, not cryptography — the
//! actual generator behind these traits is the vendored ChaCha8
//! implementation in the sibling `rand_chacha` stub.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of raw bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same expansion `rand_core` 0.6 uses, so seeds stay portable
    /// across this stub and the real crate family.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: any draw is in range.
                    return Standard::sample_standard(rng);
                }
                // Widening-multiply reduction: maps a uniform u64 onto
                // [0, span) with bias below 2^-64 — invisible at
                // simulation scale.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                <$t>::sample_inclusive(rng, lo, hi - 1)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample_standard(rng)
    }
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Ranges a value can be drawn from. Blanket impls over [`SampleUniform`]
/// (matching the real crate's shape) keep integer-literal inference
/// working: `rng.gen_range(0..10) + x` unifies the literal with `x`'s type.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
    // NaN bounds must read as empty, so spell the negation out rather
    // than flipping to `>=` (which is false for incomparable values).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn is_empty_range(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rngs` namespace for API compatibility.
pub mod rngs {
    /// A small fast non-cryptographic generator (xorshift128+).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 16];
        fn from_seed(seed: Self::Seed) -> Self {
            let s0 = u64::from_le_bytes(seed[..8].try_into().expect("8 bytes"));
            let s1 = u64::from_le_bytes(seed[8..].try_into().expect("8 bytes"));
            SmallRng {
                s0: s0 | 1, // avoid the all-zero state
                s1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = SmallRng::seed_from_u64(4);
        for n in 0..40 {
            let mut buf = vec![0u8; n];
            rng.fill_bytes(&mut buf);
            if n >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "all-zero {n}-byte fill");
            }
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&heads), "heads={heads}");
    }
}
