//! An offline drop-in for the subset of the `bytes` crate API the ledger
//! wire codec uses: big-endian `get_*`/`put_*` cursors over plain byte
//! buffers. `Bytes`/`BytesMut` here are thin wrappers around `Vec<u8>` —
//! no refcounted slabs — because the codec only needs owned buffers and
//! slice views.

#![warn(missing_docs)]

use std::ops::Deref;

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        *self = &self[n..];
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable owned byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// The bytes as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Written length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// The written bytes as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u8(7);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xy");
        let frozen = out.freeze();
        let mut buf: &[u8] = &frozen;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut rest = [0u8; 2];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        buf.get_u32();
    }

    #[test]
    fn slice_buf_advances() {
        let mut buf: &[u8] = &[1, 2, 3, 4];
        buf.advance(1);
        assert_eq!(buf.remaining(), 3);
        assert_eq!(buf.get_u8(), 2);
    }
}
