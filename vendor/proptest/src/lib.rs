//! An offline drop-in for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate, chosen deliberately for an offline,
//! dependency-free environment:
//!
//! * Cases are generated from a **fixed deterministic seed** per case
//!   index, so a failing property fails on every run (no flaky repro
//!   files needed — rerunning the test IS the repro).
//! * There is **no shrinking**: a failure reports the generated input via
//!   the assertion panic message instead of a minimised counterexample.
//! * `prop_assert*` macros are plain `assert*` — a failed case panics
//!   immediately rather than flowing through a `TestCaseError`.
//!
//! The generation API (`Strategy`, `prop_map`, `boxed`, ranges, tuples,
//! `any`, `collection::vec`, `prop_oneof!`, `sample::Index`) is
//! call-compatible with proptest 1.x for everything the workspace's
//! property tests exercise.

use std::marker::PhantomData;

/// Deterministic generator state for one test case (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A stream for the given test-case index; fixed across runs.
    pub fn for_case(case: u64) -> Self {
        TestRng(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5D)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed alternatives (used by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: AnyBool = AnyBool;
}

/// Sampling helpers (`prop::sample::Index`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position into a collection whose length is known only at use
    /// time: `index(len)` maps the stored entropy into `[0, len)`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// The index within a collection of length `len` (nonzero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop::` path alias exported by the prelude.
pub mod prop {
    pub use crate::bool;
    pub use crate::sample;
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The case-loop driver used by the `proptest!` macro expansion.
pub mod test_runner {
    pub use super::ProptestConfig;
    use super::{Strategy, TestRng};

    /// Runs a property over `config.cases` deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Generates each case and applies `test`; assertion macros inside
        /// `test` panic on failure, which the harness reports.
        pub fn run<S: Strategy>(&mut self, strategy: &S, mut test: impl FnMut(S::Value)) {
            for case in 0..self.config.cases as u64 {
                let mut rng = TestRng::for_case(case);
                test(strategy.generate(&mut rng));
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($config);
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($arg,)+)| $body);
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRunner;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case(3);
        for _ in 0..200 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0i64..=0).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn determinism_per_case() {
        let strat = crate::collection::vec(0u32..100, 1..8);
        let mut a = crate::TestRng::for_case(7);
        let mut b = crate::TestRng::for_case(7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn oneof_draws_every_arm() {
        let strat = prop_oneof![
            (0u32..1).prop_map(|_| 1u8),
            (0u32..1).prop_map(|_| 2u8),
            (0u32..1).prop_map(|_| 3u8),
        ];
        let mut rng = crate::TestRng::for_case(11);
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_round_trip(xs in crate::collection::vec(any::<u8>(), 0..32), flag in any::<bool>()) {
            prop_assert!(xs.len() < 32);
            if flag {
                prop_assert_eq!(xs.len(), xs.iter().filter(|_| true).count());
            } else {
                prop_assert_ne!(xs.len() + 1, xs.iter().filter(|_| true).count());
            }
        }
    }

    #[test]
    fn index_stays_in_range() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..100 {
            let ix = <prop::sample::Index as Arbitrary>::arbitrary(&mut rng);
            assert!(ix.index(7) < 7);
        }
    }
}
