//! An offline drop-in for `rand_chacha`'s [`ChaCha8Rng`].
//!
//! This is a real ChaCha8 core (Bernstein's ChaCha with 8 double-round
//! iterations reduced to 4 double rounds — i.e. 8 rounds total), not a
//! toy LCG: the workspace's simulations depend on high-quality,
//! platform-stable streams, and every seed must produce the same sequence
//! forever. The word/byte conventions follow RFC 8439 (little-endian
//! words, 64-byte blocks); output words are consumed in block order.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// "expand 32-byte k", the ChaCha constant.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher core with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter + 64-bit stream id (both start at zero).
    counter: u64,
    stream: u64,
    /// The current output block and the read position within it.
    block: [u32; BLOCK_WORDS],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; BLOCK_WORDS];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = self.stream as u32;
        s[15] = (self.stream >> 32) as u32;
        let input = s;
        for _ in 0..4 {
            // A double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, (mixed, orig)) in self.block.iter_mut().zip(s.iter().zip(input.iter())) {
            *out = mixed.wrapping_add(*orig);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent stream of the same key (distinct nonces
    /// yield independent keystreams).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BLOCK_WORDS; // force refill on next draw
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..64).filter(|_| b.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(7);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_is_balanced() {
        // Bit-balance sanity check on the keystream.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let total = 64_000.0;
        let frac = ones as f64 / total;
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn uniform_f64_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chacha_core_matches_known_structure() {
        // Two different seeds must diverge immediately, and a clone must
        // continue the stream exactly.
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
